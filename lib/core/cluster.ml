open Draconis_sim
open Draconis_net
open Draconis_p4

type config = {
  seed : int;
  workers : int;
  executors_per_worker : int;
  clients : int;
  racks : int;
  policy_of : Topology.t -> Policy.t;
  queue_capacity : int;
  fabric_config : Fabric.config;
  pipeline_config : Pipeline.config;
  noop_retry : Time.t;
  rsrc_of_node : int -> int;
  client_timeout : Time.t option;
}

let default_config =
  {
    seed = 42;
    workers = 10;
    executors_per_worker = 16;
    clients = 2;
    racks = 1;
    policy_of = (fun _ -> Policy.Fcfs);
    queue_capacity = 164_000;
    fabric_config = Fabric.default_config;
    pipeline_config = Pipeline.default_config;
    noop_retry = Time.us 4;
    rsrc_of_node = (fun _ -> 0xFFFFFFFF);
    client_timeout = None;
  }

type t = {
  config : config;
  engine : Engine.t;
  fabric : Draconis_proto.Message.t Fabric.t;
  pipeline : (Draconis_proto.Message.t, Switch_packet.t) Pipeline.t;
  mutable program : Switch_program.t;
  topology : Topology.t;
  metrics : Metrics.t;
  workers : Worker.t array;
  clients : Client.t array;
}

let create (config : config) =
  if config.workers < 1 then invalid_arg "Cluster.create: need workers";
  if config.clients < 1 then invalid_arg "Cluster.create: need clients";
  let engine = Engine.create () in
  let rng = Rng.create ~seed:config.seed in
  let fabric = Fabric.create ~config:config.fabric_config engine rng in
  let topology = Topology.create ~nodes:config.workers ~racks:config.racks in
  let metrics = Metrics.create ~topology engine in
  let policy = config.policy_of topology in
  let program =
    Switch_program.create ~engine
      ~instrument:(Metrics.instrument metrics)
      ~policy ~queue_capacity:config.queue_capacity ()
  in
  let pipeline =
    (* Per-task fabric-arrival mark: the only point where fabric
       transit can be split from pipeline match-action time. *)
    let on_ingress (msg : Draconis_proto.Message.t) =
      match msg with
      | Draconis_proto.Message.Job_submission { tasks; _ } ->
        List.iter
          (fun (task : Draconis_proto.Task.t) ->
            Causal.arrive task.id ~at:(Engine.now engine))
          tasks
      | _ -> ()
    in
    Pipeline.attach ~config:config.pipeline_config ~on_ingress fabric
      ~wrap:(fun msg -> Switch_packet.Wire msg)
      (Switch_program.program program)
  in
  let fn_model = Fn_model.with_topology topology in
  let workers =
    Array.init config.workers (fun node ->
        Worker.create ~node ~executors:config.executors_per_worker ~fabric
          ~make_config:(fun ~port ->
            {
              Executor.node;
              port;
              rsrc = config.rsrc_of_node node;
              noop_retry = config.noop_retry;
              fn_model;
              scheduler = Addr.Switch;
              watchdog = Some (Time.us 200);
            })
          ())
  in
  let clients =
    Array.init config.clients (fun i ->
        let host = config.workers + i in
        Client.create
          ~config:
            {
              (Client.default_config ~host ~uid:i) with
              timeout = config.client_timeout;
            }
          ~fabric ~metrics ())
  in
  let t =
    { config; engine; fabric; pipeline; program; topology; metrics; workers; clients }
  in
  Array.iter
    (fun worker ->
      Worker.set_on_task_start worker (fun task ~node ->
          Metrics.note_exec_start metrics task ~node))
    workers;
  t

let start t =
  (* Stagger initial pulls so 160 executors do not hit the switch in the
     same nanosecond. *)
  let stagger = max 1 (Time.us 1 / max 1 t.config.executors_per_worker) in
  Array.iter (fun worker -> Worker.start worker ~stagger) t.workers

let run t ~until = Engine.run ~until t.engine

let outstanding t =
  Array.fold_left (fun acc client -> acc + Client.outstanding client) 0 t.clients

let run_until_drained t ~deadline =
  let step = Time.ms 1 in
  let rec go () =
    if outstanding t = 0 then true
    else if Engine.now t.engine >= deadline then false
    else begin
      Engine.run ~until:(min deadline (Engine.now t.engine + step)) t.engine;
      go ()
    end
  in
  go ()

let engine t = t.engine
let fabric t = t.fabric
let pipeline t = t.pipeline
let program t = t.program
let topology t = t.topology
let metrics t = t.metrics

let fail_over_switch t =
  let lost = Switch_program.total_occupancy t.program in
  let policy = t.config.policy_of t.topology in
  let fresh =
    Switch_program.create ~engine:t.engine
      ~instrument:(Metrics.instrument t.metrics)
      ~policy ~queue_capacity:t.config.queue_capacity ()
  in
  t.program <- fresh;
  Pipeline.set_program t.pipeline (Switch_program.program fresh);
  (* The dead switch's in-flight and recirculating packets (repairs,
     swaps, submissions mid-pipeline) never reach the standby. *)
  Pipeline.flush_in_flight t.pipeline;
  if Trace.enabled () then
    Trace.emit ~at:(Engine.now t.engine) Trace.Pipeline
      (lazy (Printf.sprintf "switch FAIL-OVER: %d queued task(s) lost" lost));
  lost

let stagger t = max 1 (Time.us 1 / max 1 t.config.executors_per_worker)

let crash_worker t i =
  if i < 0 || i >= Array.length t.workers then
    invalid_arg "Cluster.crash_worker: bad index";
  Worker.crash t.workers.(i)

let restart_worker t i =
  if i < 0 || i >= Array.length t.workers then
    invalid_arg "Cluster.restart_worker: bad index";
  Worker.restart t.workers.(i) ~stagger:(stagger t)

let set_node_slowdown t i factor =
  if i < 0 || i >= Array.length t.workers then
    invalid_arg "Cluster.set_node_slowdown: bad index";
  Worker.set_slowdown t.workers.(i) factor

let worker t i =
  if i < 0 || i >= Array.length t.workers then invalid_arg "Cluster.worker: bad index";
  t.workers.(i)

let client t i =
  if i < 0 || i >= Array.length t.clients then invalid_arg "Cluster.client: bad index";
  t.clients.(i)

let clients t = t.clients
let workers t = t.workers
let total_executors t = Array.length t.workers * t.config.executors_per_worker

let busy_executors t =
  let busy = ref 0 in
  Array.iter
    (fun worker ->
      Worker.iter_executors worker (fun exec -> if Executor.busy exec then incr busy))
    t.workers;
  !busy
