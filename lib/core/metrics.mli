(** Experiment metrics, shared by Draconis and every baseline scheduler.

    Correlates client-side events (submission, completion), executor
    events (task start), and switch/scheduler events (enqueue,
    assignment) by task id, and exposes the samplers behind each figure
    of the paper's evaluation:

    - {e scheduling delay} (Figs. 5a, 6, 8, 9): first submission of a
      task to the moment an executor starts running it;
    - {e end-to-end delay} (Fig. 10): submission to client-observed
      completion;
    - {e queueing delay by priority} (Fig. 12): scheduler enqueue to
      assignment;
    - {e get_task() delay by priority} (Fig. 13): request arrival at
      the scheduler to assignment emission;
    - {e scheduling decisions} (Figs. 5b, 11): assignment throughput;
    - {e placement mix} (Fig. 10): local / same-rack / remote counts. *)

open Draconis_sim
open Draconis_net
open Draconis_stats
open Draconis_proto

type placement = { mutable local : int; mutable same_rack : int; mutable remote : int }

type t

(** [create ?topology engine] — [topology] enables placement
    classification for locality experiments. *)
val create : ?topology:Topology.t -> Engine.t -> t

(** [remote owner ~engine ~post] is a handle on [owner]'s state for an
    entity living on another logical process of a sharded run: every
    [note_*] captures the timestamp (and its arguments) from [engine] —
    the {e caller}'s LP clock — and defers the actual mutation as a
    closure through [post ~at:now], which is expected to route it to the
    owner's LP with a deterministic [(at, src, seq)] mailbox stamp (see
    {!Draconis_net.Fabric.router_defer}).  The owner's state is thus
    only ever mutated from the owner's LP, in stamp order, making
    sampler contents bit-identical across shard counts. *)
val remote : t -> engine:Engine.t -> post:(at:Time.t -> (unit -> unit) -> unit) -> t

(** {2 Client-side events} *)

(** [note_submit t id] records a task's submission time; only the first
    submission counts (retries and timeout resubmissions measure
    against the original, as the paper's latency spikes do). *)
val note_submit : t -> Task.id -> unit

val note_complete : t -> Task.id -> unit
val note_timeout : t -> Task.id -> unit

(** [note_resubmit t id] counts one timeout-driven resubmission. *)
val note_resubmit : t -> Task.id -> unit

(** [note_abandon t id] counts a task given up on after exhausting its
    resubmission budget (see {!Client.config.max_resubmissions}). *)
val note_abandon : t -> Task.id -> unit

(** {2 Executor-side events} *)

(** [note_exec_start t task ~node] records scheduling delay and
    placement for a task starting on [node]. *)
val note_exec_start : t -> Task.t -> node:int -> unit

(** {2 Scheduler-side events} — the {!Instrument.t} adapter wires these
    into the Draconis switch program; baselines call them directly. *)

val note_enqueue : t -> Task.id -> level:int -> unit
val note_assign : t -> Task.id -> requested_at:Time.t -> unit
val note_reject : t -> int -> unit

(** Switch-mechanism events (Draconis only; baselines have none). *)
val note_swap : t -> unit

val note_recirculate : t -> unit
val note_repair_flag : t -> unit
val instrument : t -> Instrument.t

(** {2 Results} *)

val scheduling_delay : t -> Sampler.t
val end_to_end_delay : t -> Sampler.t

(** [queueing_delay t ~level] (0-based level; empty sampler if unused). *)
val queueing_delay : t -> level:int -> Sampler.t

(** Scheduling delay per fairness class — a task's tenant id or
    priority level (0 otherwise) — sorted by class.  Feeds the PIFO
    experiment's fairness index and starvation measurements. *)
val delay_by_class : t -> (int * Sampler.t) list

(** Started tasks that carried a {!Task.Deadline} property. *)
val deadline_tracked : t -> int

(** Of {!deadline_tracked}, those whose scheduling delay exceeded their
    relative deadline. *)
val deadline_misses : t -> int

val get_task_delay : t -> level:int -> Sampler.t
val decisions : t -> Meter.t
val placement : t -> placement

val submitted : t -> int
val started : t -> int
val completed : t -> int
val timeouts : t -> int

(** Timeout-driven resubmissions sent (fault recovery in flight). *)
val resubmitted : t -> int

(** Tasks abandoned after [max_resubmissions] straight timeouts. *)
val abandoned : t -> int

val rejected : t -> int

(** Task swaps performed by the switch program (§5.1). *)
val swaps : t -> int

(** Recirculations the switch program produced (swap hops, repairs,
    resubmissions, multi-task submissions, priority escalation) —
    scheduler-side, unlike the pipeline's port-level count. *)
val recirculations : t -> int

(** Circular-queue repair-flag trips (§4.7), both pointers. *)
val repair_flags : t -> int

(** Tasks submitted but never started (lost or still queued at the end
    of the run), clamped at 0: starts are counted per assignment, so
    resubmitted tasks can start more than once. *)
val unstarted : t -> int
