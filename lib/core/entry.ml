open Draconis_net
open Draconis_proto

type t = { task : Task.t; client : Addr.t; skip : int }

let make ?(skip = 0) ~task ~client () = { task; client; skip }

let equal a b =
  Task.equal a.task b.task && Addr.equal a.client b.client && a.skip = b.skip

let pp fmt t =
  Format.fprintf fmt "{%a client=%a skip=%d}" Task.pp t.task Addr.pp t.client t.skip

let word_count = 11

let mask32 = 0xFFFFFFFF
let switch_wire = 0xFFFF

let addr_to_word = function
  | Addr.Switch -> switch_wire
  | Addr.Host i ->
    if i < 0 || i >= switch_wire then invalid_arg "Entry: host id out of range";
    i

let addr_of_word w =
  if w = switch_wire then Addr.Switch
  else if w >= 0 && w < switch_wire then Addr.Host w
  else invalid_arg "Entry: bad address word"

let tprops_to_words = function
  | Task.No_props -> (0, 0, 0)
  | Task.Resources bitmap ->
    if bitmap < 0 || bitmap > mask32 then invalid_arg "Entry: resource bitmap range";
    (1, bitmap, 0)
  | Task.Locality nodes ->
    let n = List.length nodes in
    if n > 4 then invalid_arg "Entry: more than 4 locality nodes";
    let packed = Array.make 4 0 in
    List.iteri
      (fun i node ->
        if node < 0 || node > 0xFFFF then invalid_arg "Entry: locality node range";
        packed.(i) <- node)
      nodes;
    ( 2 lor (n lsl 8),
      packed.(0) lor (packed.(1) lsl 16),
      packed.(2) lor (packed.(3) lsl 16) )
  | Task.Priority p ->
    if p < 1 || p > 0xFF then invalid_arg "Entry: priority range";
    (3, p, 0)
  | Task.Deadline d ->
    if d < 0 || d > mask32 then invalid_arg "Entry: deadline range";
    (4, d, 0)
  | Task.Tenant id ->
    if id < 0 || id > mask32 then invalid_arg "Entry: tenant range";
    (5, id, 0)

let tprops_of_words tag lo hi =
  match tag land 0xFF with
  | 0 -> Task.No_props
  | 1 -> Task.Resources lo
  | 2 ->
    let n = (tag lsr 8) land 0xFF in
    if n > 4 then invalid_arg "Entry: bad locality count";
    let all = [ lo land 0xFFFF; (lo lsr 16) land 0xFFFF;
                hi land 0xFFFF; (hi lsr 16) land 0xFFFF ] in
    Task.Locality (List.filteri (fun i _ -> i < n) all)
  | 3 -> Task.Priority lo
  | 4 -> Task.Deadline lo
  | 5 -> Task.Tenant lo
  | _ -> invalid_arg "Entry: bad tprops tag"

let to_words t =
  let tag, lo, hi = tprops_to_words t.task.tprops in
  let check name v =
    if v < 0 || v > mask32 then invalid_arg ("Entry: " ^ name ^ " out of u32 range")
  in
  check "uid" t.task.id.uid;
  check "jid" t.task.id.jid;
  check "tid" t.task.id.tid;
  if t.task.fn_par < 0 then invalid_arg "Entry: negative fn_par";
  [|
    t.task.id.uid;
    t.task.id.jid;
    t.task.id.tid;
    t.task.fn_id;
    t.task.fn_par land mask32;
    (t.task.fn_par lsr 32) land mask32;
    tag;
    lo;
    hi;
    addr_to_word t.client;
    t.skip;
  |]

let of_words w =
  if Array.length w <> word_count then invalid_arg "Entry.of_words: bad length";
  {
    task =
      {
        id = { uid = w.(0); jid = w.(1); tid = w.(2) };
        fn_id = w.(3);
        fn_par = w.(4) lor (w.(5) lsl 32);
        tprops = tprops_of_words w.(6) w.(7) w.(8);
      };
    client = addr_of_word w.(9);
    skip = w.(10);
  }
