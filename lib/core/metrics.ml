open Draconis_sim
open Draconis_net
open Draconis_stats
open Draconis_proto

type placement = { mutable local : int; mutable same_rack : int; mutable remote : int }

type t = {
  engine : Engine.t;
  topology : Topology.t option;
  submit_times : (Task.id, Time.t) Hashtbl.t;
  enqueue_times : (Task.id, Time.t * int) Hashtbl.t;
  scheduling_delay : Sampler.t;
  end_to_end_delay : Sampler.t;
  queueing_by_level : (int, Sampler.t) Hashtbl.t;
  get_task_by_level : (int, Sampler.t) Hashtbl.t;
  delay_by_class : (int, Sampler.t) Hashtbl.t;
  decisions : Meter.t;
  placement : placement;
  mutable submitted : int;
  mutable started : int;
  mutable completed : int;
  mutable timeouts : int;
  mutable resubmitted : int;
  mutable abandoned : int;
  mutable rejected : int;
  mutable swaps : int;
  mutable recirculations : int;
  mutable repair_flags : int;
  mutable deadline_tracked : int;
  mutable deadline_misses : int;
}

let create ?topology engine =
  {
    engine;
    topology;
    submit_times = Hashtbl.create 4096;
    enqueue_times = Hashtbl.create 4096;
    scheduling_delay = Sampler.create ();
    end_to_end_delay = Sampler.create ();
    queueing_by_level = Hashtbl.create 8;
    get_task_by_level = Hashtbl.create 8;
    delay_by_class = Hashtbl.create 8;
    decisions = Meter.create ();
    placement = { local = 0; same_rack = 0; remote = 0 };
    submitted = 0;
    started = 0;
    completed = 0;
    timeouts = 0;
    resubmitted = 0;
    abandoned = 0;
    rejected = 0;
    swaps = 0;
    recirculations = 0;
    repair_flags = 0;
    deadline_tracked = 0;
    deadline_misses = 0;
  }

let level_sampler tbl level =
  match Hashtbl.find_opt tbl level with
  | Some sampler -> sampler
  | None ->
    let sampler = Sampler.create () in
    Hashtbl.replace tbl level sampler;
    sampler

let note_submit t id =
  if not (Hashtbl.mem t.submit_times id) then begin
    t.submitted <- t.submitted + 1;
    Hashtbl.replace t.submit_times id (Engine.now t.engine)
  end

let note_complete t id =
  t.completed <- t.completed + 1;
  match Hashtbl.find_opt t.submit_times id with
  | None -> ()
  | Some submit -> Sampler.record t.end_to_end_delay (Engine.now t.engine - submit)

let note_timeout t _id = t.timeouts <- t.timeouts + 1
let note_resubmit t _id = t.resubmitted <- t.resubmitted + 1
let note_abandon t _id = t.abandoned <- t.abandoned + 1

let classify_placement t (task : Task.t) ~node =
  match (Task.locality_nodes task, t.topology) with
  | [], _ | _, None -> ()
  | locals, Some topo ->
    if List.mem node locals then t.placement.local <- t.placement.local + 1
    else if List.exists (fun local -> Topology.same_rack topo node local) locals then
      t.placement.same_rack <- t.placement.same_rack + 1
    else t.placement.remote <- t.placement.remote + 1

(* A task's fairness class: its tenant or priority level (0 for tasks
   carrying neither). *)
let task_class (task : Task.t) =
  match Task.tenant task with
  | Some id -> id
  | None -> ( match task.tprops with Task.Priority p -> p | _ -> 0)

let note_exec_start t task ~node =
  t.started <- t.started + 1;
  classify_placement t task ~node;
  match Hashtbl.find_opt t.submit_times task.Task.id with
  | None -> ()
  | Some submit ->
    let delay = Engine.now t.engine - submit in
    Sampler.record t.scheduling_delay delay;
    Sampler.record (level_sampler t.delay_by_class (task_class task)) delay;
    (match Task.relative_deadline task with
    | None -> ()
    | Some deadline ->
      t.deadline_tracked <- t.deadline_tracked + 1;
      if delay > deadline then t.deadline_misses <- t.deadline_misses + 1)

let note_enqueue t id ~level =
  if not (Hashtbl.mem t.enqueue_times id) then
    Hashtbl.replace t.enqueue_times id (Engine.now t.engine, level)

let note_assign t id ~requested_at =
  let now = Engine.now t.engine in
  Meter.mark t.decisions ~now ();
  match Hashtbl.find_opt t.enqueue_times id with
  | None -> ()
  | Some (enqueued, level) ->
    Sampler.record (level_sampler t.queueing_by_level level) (now - enqueued);
    Sampler.record (level_sampler t.get_task_by_level level) (now - requested_at)

let note_reject t n = t.rejected <- t.rejected + n

let note_swap t = t.swaps <- t.swaps + 1
let note_recirculate t = t.recirculations <- t.recirculations + 1
let note_repair_flag t = t.repair_flags <- t.repair_flags + 1

let instrument t : Instrument.t =
  {
    Instrument.on_enqueue = (fun id ~level -> note_enqueue t id ~level);
    on_dequeue = (fun _ ~level:_ -> ());
    on_assign = (fun id ~node:_ ~requested_at -> note_assign t id ~requested_at);
    on_reject = (fun n -> note_reject t n);
    on_noop = (fun () -> ());
    on_swap = (fun ~swapped_in:_ ~swapped_out:_ ~level:_ -> note_swap t);
    on_recirculate = (fun ~kind:_ -> note_recirculate t);
    on_repair_flag = (fun _ ~level:_ -> note_repair_flag t);
    on_rank = (fun _ ~rank:_ -> ());
    on_pop_scan = (fun () -> ());
  }

let scheduling_delay t = t.scheduling_delay
let end_to_end_delay t = t.end_to_end_delay
let queueing_delay t ~level = level_sampler t.queueing_by_level level

let delay_by_class t =
  Hashtbl.fold (fun cls sampler acc -> (cls, sampler) :: acc) t.delay_by_class []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let deadline_tracked t = t.deadline_tracked
let deadline_misses t = t.deadline_misses
let get_task_delay t ~level = level_sampler t.get_task_by_level level
let decisions t = t.decisions
let placement t = t.placement
let submitted t = t.submitted
let started t = t.started
let completed t = t.completed
let timeouts t = t.timeouts
let resubmitted t = t.resubmitted
let abandoned t = t.abandoned
let rejected t = t.rejected
let swaps t = t.swaps
let recirculations t = t.recirculations
let repair_flags t = t.repair_flags
(* [started] counts assignment events, so a task that is lost and
   resubmitted starts more than once; clamp so duplicated starts under
   fault injection cannot drive the count negative. *)
let unstarted t = max 0 (t.submitted - t.started)
