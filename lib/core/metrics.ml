open Draconis_sim
open Draconis_net
open Draconis_stats
open Draconis_proto

type placement = { mutable local : int; mutable same_rack : int; mutable remote : int }

(* All the actual state — tables, samplers, counters — lives in one
   [core] owned by a single logical process.  A [t] is a handle on a
   core: the owner's handle mutates it directly, while a [remote] handle
   (sharded runs) reads its own LP's clock and ships every mutation as a
   stamped closure to the owner's LP, so the core is only ever touched
   from one domain and sampler insertion order is the owner-LP event
   order — partition-independent. *)
type core = {
  topology : Topology.t option;
  submit_times : (Task.id, Time.t) Hashtbl.t;
  enqueue_times : (Task.id, Time.t * int) Hashtbl.t;
  scheduling_delay : Sampler.t;
  end_to_end_delay : Sampler.t;
  queueing_by_level : (int, Sampler.t) Hashtbl.t;
  get_task_by_level : (int, Sampler.t) Hashtbl.t;
  delay_by_class : (int, Sampler.t) Hashtbl.t;
  decisions : Meter.t;
  placement : placement;
  mutable submitted : int;
  mutable started : int;
  mutable completed : int;
  mutable timeouts : int;
  mutable resubmitted : int;
  mutable abandoned : int;
  mutable rejected : int;
  mutable swaps : int;
  mutable recirculations : int;
  mutable repair_flags : int;
  mutable deadline_tracked : int;
  mutable deadline_misses : int;
}

type t = {
  engine : Engine.t;
  core : core;
  post : (at:Time.t -> (unit -> unit) -> unit) option;
      (* [None]: mutate inline (the single-engine reference behaviour).
         [Some post]: defer the mutation closure, stamped with the
         capture time, to the core owner's LP. *)
}

let create ?topology engine =
  {
    engine;
    post = None;
    core =
      {
        topology;
        submit_times = Hashtbl.create 4096;
        enqueue_times = Hashtbl.create 4096;
        scheduling_delay = Sampler.create ();
        end_to_end_delay = Sampler.create ();
        queueing_by_level = Hashtbl.create 8;
        get_task_by_level = Hashtbl.create 8;
        delay_by_class = Hashtbl.create 8;
        decisions = Meter.create ();
        placement = { local = 0; same_rack = 0; remote = 0 };
        submitted = 0;
        started = 0;
        completed = 0;
        timeouts = 0;
        resubmitted = 0;
        abandoned = 0;
        rejected = 0;
        swaps = 0;
        recirculations = 0;
        repair_flags = 0;
        deadline_tracked = 0;
        deadline_misses = 0;
      };
  }

let remote t ~engine ~post = { engine; core = t.core; post = Some post }

(* Every note below captures [now] (and its arguments) eagerly, then
   runs the mutation either inline or on the owner's LP.  Reads of
   cross-entity state (e.g. [submit_times] in [note_exec_start]) happen
   inside the closure: by the lookahead contract the submit closure's
   stamp always precedes the exec-start closure's stamp, so the deferred
   read still observes the submission. *)
let dispatch t ~now fn =
  match t.post with None -> fn () | Some post -> post ~at:now fn

let level_sampler tbl level =
  match Hashtbl.find_opt tbl level with
  | Some sampler -> sampler
  | None ->
    let sampler = Sampler.create () in
    Hashtbl.replace tbl level sampler;
    sampler

let note_submit t id =
  let now = Engine.now t.engine in
  dispatch t ~now (fun () ->
      let c = t.core in
      if not (Hashtbl.mem c.submit_times id) then begin
        c.submitted <- c.submitted + 1;
        Hashtbl.replace c.submit_times id now
      end)

let note_complete t id =
  let now = Engine.now t.engine in
  dispatch t ~now (fun () ->
      let c = t.core in
      c.completed <- c.completed + 1;
      match Hashtbl.find_opt c.submit_times id with
      | None -> ()
      | Some submit -> Sampler.record c.end_to_end_delay (now - submit))

let counter t bump =
  let now = Engine.now t.engine in
  dispatch t ~now (fun () -> bump t.core)

let note_timeout t _id = counter t (fun c -> c.timeouts <- c.timeouts + 1)
let note_resubmit t _id = counter t (fun c -> c.resubmitted <- c.resubmitted + 1)
let note_abandon t _id = counter t (fun c -> c.abandoned <- c.abandoned + 1)

let classify_placement c (task : Task.t) ~node =
  match (Task.locality_nodes task, c.topology) with
  | [], _ | _, None -> ()
  | locals, Some topo ->
    if List.mem node locals then c.placement.local <- c.placement.local + 1
    else if List.exists (fun local -> Topology.same_rack topo node local) locals then
      c.placement.same_rack <- c.placement.same_rack + 1
    else c.placement.remote <- c.placement.remote + 1

(* A task's fairness class: its tenant or priority level (0 for tasks
   carrying neither). *)
let task_class (task : Task.t) =
  match Task.tenant task with
  | Some id -> id
  | None -> ( match task.tprops with Task.Priority p -> p | _ -> 0)

let note_exec_start t task ~node =
  let now = Engine.now t.engine in
  dispatch t ~now (fun () ->
      let c = t.core in
      c.started <- c.started + 1;
      classify_placement c task ~node;
      match Hashtbl.find_opt c.submit_times task.Task.id with
      | None -> ()
      | Some submit ->
        let delay = now - submit in
        Sampler.record c.scheduling_delay delay;
        Sampler.record (level_sampler c.delay_by_class (task_class task)) delay;
        (match Task.relative_deadline task with
        | None -> ()
        | Some deadline ->
          c.deadline_tracked <- c.deadline_tracked + 1;
          if delay > deadline then c.deadline_misses <- c.deadline_misses + 1))

let note_enqueue t id ~level =
  let now = Engine.now t.engine in
  dispatch t ~now (fun () ->
      let c = t.core in
      if not (Hashtbl.mem c.enqueue_times id) then
        Hashtbl.replace c.enqueue_times id (now, level))

let note_assign t id ~requested_at =
  let now = Engine.now t.engine in
  dispatch t ~now (fun () ->
      let c = t.core in
      Meter.mark c.decisions ~now ();
      match Hashtbl.find_opt c.enqueue_times id with
      | None -> ()
      | Some (enqueued, level) ->
        Sampler.record (level_sampler c.queueing_by_level level) (now - enqueued);
        Sampler.record (level_sampler c.get_task_by_level level) (now - requested_at))

let note_reject t n = counter t (fun c -> c.rejected <- c.rejected + n)
let note_swap t = counter t (fun c -> c.swaps <- c.swaps + 1)
let note_recirculate t = counter t (fun c -> c.recirculations <- c.recirculations + 1)
let note_repair_flag t = counter t (fun c -> c.repair_flags <- c.repair_flags + 1)

let instrument t : Instrument.t =
  {
    Instrument.on_enqueue = (fun id ~level -> note_enqueue t id ~level);
    on_dequeue = (fun _ ~level:_ -> ());
    on_assign = (fun id ~node:_ ~requested_at -> note_assign t id ~requested_at);
    on_reject = (fun n -> note_reject t n);
    on_noop = (fun () -> ());
    on_swap = (fun ~swapped_in:_ ~swapped_out:_ ~level:_ -> note_swap t);
    on_recirculate = (fun ~kind:_ -> note_recirculate t);
    on_repair_flag = (fun _ ~level:_ -> note_repair_flag t);
    on_rank = (fun _ ~rank:_ -> ());
    on_pop_scan = (fun () -> ());
  }

let scheduling_delay t = t.core.scheduling_delay
let end_to_end_delay t = t.core.end_to_end_delay
let queueing_delay t ~level = level_sampler t.core.queueing_by_level level

let delay_by_class t =
  Hashtbl.fold (fun cls sampler acc -> (cls, sampler) :: acc) t.core.delay_by_class []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let deadline_tracked t = t.core.deadline_tracked
let deadline_misses t = t.core.deadline_misses
let get_task_delay t ~level = level_sampler t.core.get_task_by_level level
let decisions t = t.core.decisions
let placement t = t.core.placement
let submitted t = t.core.submitted
let started t = t.core.started
let completed t = t.core.completed
let timeouts t = t.core.timeouts
let resubmitted t = t.core.resubmitted
let abandoned t = t.core.abandoned
let rejected t = t.core.rejected
let swaps t = t.core.swaps
let recirculations t = t.core.recirculations
let repair_flags t = t.core.repair_flags

(* [started] counts assignment events, so a task that is lost and
   resubmitted starts more than once; clamp so duplicated starts under
   fault injection cannot drive the count negative. *)
let unstarted t = max 0 (t.core.submitted - t.core.started)
