open Draconis_sim
open Draconis_net
open Draconis_proto
open Draconis_pifo

type pifo_pop =
  | Pop_start
  | Pop_scan of Pifo.scan
  | Pop_claim of Pifo.candidate

type t =
  | Wire of Message.t
  | Repair_add of { level : int; target : int }
  | Repair_retrieve of { level : int; target : int }
  | Swap of {
      level : int;
      entry : Entry.t;
      swap_indx : int;
      info : Message.executor_info;
      pkt_retrieve_ptr : int;
      attempts : int;
      requested_at : Time.t;
    }
  | Resubmit of { level : int; entry : Entry.t }
  | Prio_request of {
      info : Message.executor_info;
      rtrv_prio : int;
      requested_at : Time.t;
    }
  | Pifo_admit of {
      probe : Pifo.probe;
      task : Task.t;
      client : Addr.t;
      uid : int;
      jid : int;
      rest : Task.t list;
    }
  | Pifo_pop of {
      step : pifo_pop;
      info : Message.executor_info;
      requested_at : Time.t;
      restarts : int;
    }

let pp_pifo_pop fmt = function
  | Pop_start -> Format.pp_print_string fmt "start"
  | Pop_scan _ -> Format.pp_print_string fmt "scan"
  | Pop_claim _ -> Format.pp_print_string fmt "claim"

let pp fmt = function
  | Wire msg -> Format.fprintf fmt "wire(%a)" Message.pp msg
  | Repair_add { level; target } ->
    Format.fprintf fmt "repair_add(level=%d target=%d)" level target
  | Repair_retrieve { level; target } ->
    Format.fprintf fmt "repair_retrieve(level=%d target=%d)" level target
  | Swap { level; entry; swap_indx; attempts; _ } ->
    Format.fprintf fmt "swap(level=%d %a indx=%d attempts=%d)" level Entry.pp entry
      swap_indx attempts
  | Resubmit { level; entry } ->
    Format.fprintf fmt "resubmit(level=%d %a)" level Entry.pp entry
  | Prio_request { rtrv_prio; requested_at; _ } ->
    Format.fprintf fmt "prio_request(prio=%d at=%a)" rtrv_prio Time.pp requested_at
  | Pifo_admit { task; rest; _ } ->
    Format.fprintf fmt "pifo_admit(%a +%d)" Task.pp task (List.length rest)
  | Pifo_pop { step; restarts; requested_at; _ } ->
    Format.fprintf fmt "pifo_pop(%a restarts=%d at=%a)" pp_pifo_pop step restarts
      Time.pp requested_at
