module Obs = Draconis_obs

let key (id : Draconis_proto.Task.id) = (id.uid, id.jid, id.tid)

let with_ctx f = match Obs.Trace_ctx.current () with None -> () | Some ctx -> f ctx

let submit id ~at = with_ctx (fun ctx -> Obs.Trace_ctx.submit ctx (key id) ~at)
let sent id ~at = with_ctx (fun ctx -> Obs.Trace_ctx.sent ctx (key id) ~at)
let arrive id ~at = with_ctx (fun ctx -> Obs.Trace_ctx.arrive ctx (key id) ~at)
let spin id ~at = with_ctx (fun ctx -> Obs.Trace_ctx.spin ctx (key id) ~at)

let enqueue id ~at ~level =
  with_ctx (fun ctx -> Obs.Trace_ctx.enqueue ctx (key id) ~at ~level)

let reject id ~at = with_ctx (fun ctx -> Obs.Trace_ctx.reject ctx (key id) ~at)
let dequeue id ~at = with_ctx (fun ctx -> Obs.Trace_ctx.dequeue ctx (key id) ~at)
let assign id ~at = with_ctx (fun ctx -> Obs.Trace_ctx.assign ctx (key id) ~at)
let exec_start id ~at = with_ctx (fun ctx -> Obs.Trace_ctx.exec_start ctx (key id) ~at)
let exec_done id ~at = with_ctx (fun ctx -> Obs.Trace_ctx.exec_done ctx (key id) ~at)
let complete id ~at = with_ctx (fun ctx -> Obs.Trace_ctx.complete ctx (key id) ~at)
let flag_swap id = with_ctx (fun ctx -> Obs.Trace_ctx.flag_swap ctx (key id))
let flag_resubmit id = with_ctx (fun ctx -> Obs.Trace_ctx.flag_resubmit ctx (key id))
let repair_window ~level = with_ctx (fun ctx -> Obs.Trace_ctx.repair_window ctx ~level)
