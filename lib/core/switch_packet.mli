(** Packets traversing the Draconis switch pipeline.

    Besides wire protocol messages, the pipeline processes its own
    recirculated packet kinds: repair packets that fix queue pointers
    (§4.5), swap packets that walk the queue for constraint policies
    (§5.1), resubmission packets (a swap packet "treated as a
    job_submission" after exhausting the queue), and priority-request
    packets scanning lower priority levels (§6.1).

    Simulation-only fields ([requested_at]) carry timestamps for the
    get_task() latency measurements of Fig. 13; they occupy per-packet
    metadata on a real switch. *)

open Draconis_sim
open Draconis_net
open Draconis_proto
open Draconis_pifo

(** Which traversal of a multi-traversal PIFO pop the packet is on. *)
type pifo_pop =
  | Pop_start  (** begin (or restart) the rank-store scan *)
  | Pop_scan of Pifo.scan  (** scan in flight, one row per traversal *)
  | Pop_claim of Pifo.candidate  (** scan done; claim the winner *)

type t =
  | Wire of Message.t  (** packet from a client or executor *)
  | Repair_add of { level : int; target : int }
  | Repair_retrieve of { level : int; target : int }
  | Swap of {
      level : int;
      entry : Entry.t;  (** the task travelling in the packet *)
      swap_indx : int;  (** next queue index to examine *)
      info : Message.executor_info;  (** the requesting executor *)
      pkt_retrieve_ptr : int;  (** retrieve pointer at pop time *)
      attempts : int;  (** swaps performed so far *)
      requested_at : Time.t;
    }
  | Resubmit of { level : int; entry : Entry.t }
      (** re-insert a task that no current executor can run *)
  | Prio_request of {
      info : Message.executor_info;
      rtrv_prio : int;  (** next priority level to scan (1-based) *)
      requested_at : Time.t;
    }
  | Pifo_admit of {
      probe : Pifo.probe;  (** in-flight admission probe state *)
      task : Task.t;  (** the task being admitted *)
      client : Addr.t;
      uid : int;
      jid : int;
      rest : Task.t list;  (** submission tasks still to admit *)
    }  (** a PIFO admission whose probe row was full (recirculating) *)
  | Pifo_pop of {
      step : pifo_pop;
      info : Message.executor_info;
      requested_at : Time.t;
      restarts : int;  (** pops restarted after a lost claim *)
    }  (** a multi-traversal PIFO pop serving a task request *)

val pp : Format.formatter -> t -> unit
