open Draconis_sim
open Draconis_p4
open Draconis_proto
module Obs = Draconis_obs

type t = {
  engine : Engine.t;
  policy : Policy.t;
  queues : Circular_queue.t array;
  instrument : Instrument.t;
  mutable assignments : int;
  mutable noops : int;
  mutable rejected_tasks : int;
  mutable swaps : int;
  mutable resubmissions : int;
  mutable repairs_launched : int;
}

let create ~engine ?(instrument = Instrument.default) ~policy ~queue_capacity () =
  if queue_capacity < 1 then
    invalid_arg "Switch_program.create: queue_capacity must be >= 1";
  let levels = Policy.queue_count policy in
  let queues =
    Array.init levels (fun level ->
        Circular_queue.create
          ~name:(Printf.sprintf "queue%d" level)
          ~capacity:queue_capacity ())
  in
  {
    engine;
    policy;
    queues;
    instrument;
    assignments = 0;
    noops = 0;
    rejected_tasks = 0;
    swaps = 0;
    resubmissions = 0;
    repairs_launched = 0;
  }

let policy t = t.policy

let queue t level =
  if level < 0 || level >= Array.length t.queues then
    invalid_arg "Switch_program.queue: bad level";
  t.queues.(level)

let total_occupancy t =
  Array.fold_left (fun acc q -> acc + Circular_queue.occupancy q) 0 t.queues

let registers t =
  Array.to_list t.queues |> List.concat_map Circular_queue.registers

let assignments t = t.assignments
let noops t = t.noops
let rejected_tasks t = t.rejected_tasks
let swaps t = t.swaps
let resubmissions t = t.resubmissions
let repairs_launched t = t.repairs_launched

(* -- helpers -------------------------------------------------------------- *)

(* Every recirculation the program produces flows through here so the
   instrument hook and the observability counter cannot drift apart. *)
let recirc t ~kind pkt =
  t.instrument.on_recirculate ~kind;
  Obs.Recorder.count "switch.recirculations" 1;
  Pipeline.Recirculate pkt

(* A pointer-repair flag tripped (§4.7): the queue is in its degraded
   window until the repair packet lands. *)
let repair_flag_tripped t flag ~level =
  t.instrument.on_repair_flag flag ~level;
  Causal.repair_window ~level;
  Obs.Recorder.count "queue.repair_flags" 1;
  if Obs.Recorder.active () then
    Obs.Recorder.mark ~at:(Engine.now t.engine) ~track:"queue"
      (Printf.sprintf "repair-%s L%d" (Instrument.repair_flag_name flag) level)

let noop_to t (info : Message.executor_info) =
  t.noops <- t.noops + 1;
  t.instrument.on_noop ();
  Obs.Recorder.count "switch.noops" 1;
  Pipeline.Emit (info.exec_addr, Message.Noop_assignment { port = info.exec_port })

let assign_to t (info : Message.executor_info) (entry : Entry.t) ~requested_at =
  t.assignments <- t.assignments + 1;
  t.instrument.on_assign entry.task.id ~node:info.exec_node ~requested_at;
  Causal.assign entry.task.id ~at:(Engine.now t.engine);
  Obs.Recorder.count "switch.assignments" 1;
  Pipeline.Emit
    ( info.exec_addr,
      Message.Task_assignment
        { task = entry.task; client = entry.client; port = info.exec_port } )

let retrieve_repair_output t ~level = function
  | None -> []
  | Some target ->
    t.repairs_launched <- t.repairs_launched + 1;
    repair_flag_tripped t Instrument.Retrieve_flag ~level;
    Obs.Recorder.count "switch.repairs_launched" 1;
    if Trace.enabled () then
      Trace.emit ~at:(Engine.now t.engine) Trace.Queue
        (lazy (Printf.sprintf "retrieve repair level=%d target=%d" level target));
    [ recirc t ~kind:"repair-retrieve" (Switch_packet.Repair_retrieve { level; target }) ]

(* Enqueue one entry; shared by job submissions and task resubmission. *)
let enqueue_entry t ctx ~level (entry : Entry.t) =
  let outcome = Circular_queue.enqueue t.queues.(level) ctx entry in
  (match outcome with
  | Circular_queue.Enqueued _ ->
    t.instrument.on_enqueue entry.task.id ~level;
    Causal.enqueue entry.task.id ~at:(Engine.now t.engine) ~level
  | Circular_queue.Rejected _ -> ());
  outcome

(* -- job submission (§4.3) ------------------------------------------------ *)

let handle_submission t ctx ~client ~uid ~jid ~tasks =
  match tasks with
  | [] -> [ Pipeline.Emit (client, Message.Job_ack { uid; jid }) ]
  | task :: rest ->
    let level = Policy.queue_of_task t.policy task in
    let entry = Entry.make ~task ~client () in
    (match enqueue_entry t ctx ~level entry with
    | Circular_queue.Enqueued { index = _; retrieve_repair } ->
      let repairs = retrieve_repair_output t ~level retrieve_repair in
      let continuation =
        (* Remaining tasks ride a recirculation with a decremented
           #TASKS, exactly as the hardware reprocesses the packet. *)
        if rest = [] then [ Pipeline.Emit (client, Message.Job_ack { uid; jid }) ]
        else begin
          List.iter
            (fun (task : Task.t) -> Causal.spin task.id ~at:(Engine.now t.engine))
            rest;
          [ recirc t ~kind:"submission"
              (Switch_packet.Wire (Job_submission { client; uid; jid; tasks = rest }));
          ]
        end
      in
      repairs @ continuation
    | Circular_queue.Rejected { add_repair; retrieve_repair } ->
      (* Bounce every not-yet-enqueued task back to the client (§4.3). *)
      t.rejected_tasks <- t.rejected_tasks + List.length tasks;
      t.instrument.on_reject (List.length tasks);
      List.iter
        (fun (task : Task.t) -> Causal.reject task.id ~at:(Engine.now t.engine))
        tasks;
      Obs.Recorder.count "switch.rejected_tasks" (List.length tasks);
      let repairs =
        match add_repair with
        | None -> []
        | Some target ->
          t.repairs_launched <- t.repairs_launched + 1;
          repair_flag_tripped t Instrument.Add_flag ~level;
          Obs.Recorder.count "switch.repairs_launched" 1;
          [ recirc t ~kind:"repair-add" (Switch_packet.Repair_add { level; target }) ]
      in
      let repairs = repairs @ retrieve_repair_output t ~level retrieve_repair in
      repairs @ [ Pipeline.Emit (client, Message.Queue_full { uid; jid; tasks }) ])

(* -- task retrieval (§4.6, §5.1, §6.1) ------------------------------------ *)

(* A popped (or swapped-in) task that fails the policy check has been
   examined and skipped once more (§5.3). *)
let bump_skip (entry : Entry.t) = { entry with skip = entry.skip + 1 }

let start_swap t ~level ~(entry : Entry.t) ~index ~info ~requested_at =
  t.swaps <- t.swaps + 1;
  Causal.flag_swap entry.task.id;
  Causal.spin entry.task.id ~at:(Engine.now t.engine);
  Obs.Recorder.count "switch.swaps" 1;
  let next = Circular_queue.next_index t.queues.(level) index in
  recirc t ~kind:"swap"
    (Switch_packet.Swap
       {
         level;
         entry;
         swap_indx = next;
         info;
         pkt_retrieve_ptr = next;
         attempts = 0;
         requested_at;
       })

let handle_request t ctx (info : Message.executor_info) ~rtrv_prio ~requested_at =
  let levels = Array.length t.queues in
  if rtrv_prio < 1 || rtrv_prio > levels then [ noop_to t info ]
  else begin
    let level = rtrv_prio - 1 in
    match Circular_queue.dequeue t.queues.(level) ctx with
    | Circular_queue.Repair_pending -> [ noop_to t info ]
    | Circular_queue.Empty ->
      (* Priority policy: scan the next-lower priority level via
         recirculation (§6.1); otherwise report no work. *)
      if rtrv_prio < levels then
        [ recirc t ~kind:"prio-request"
            (Switch_packet.Prio_request { info; rtrv_prio = rtrv_prio + 1; requested_at });
        ]
      else [ noop_to t info ]
    | Circular_queue.Dequeued { index; entry } ->
      t.instrument.on_dequeue entry.task.id ~level;
      Causal.dequeue entry.task.id ~at:(Engine.now t.engine);
      if not (Policy.uses_swapping t.policy) then
        [ assign_to t info entry ~requested_at ]
      else begin
        let entry = bump_skip entry in
        if Policy.satisfies t.policy ~entry ~info then
          [ assign_to t info entry ~requested_at ]
        else [ start_swap t ~level ~entry ~index ~info ~requested_at ]
      end
  end

(* -- task swapping (§5.1) -------------------------------------------------- *)

let resubmit_and_noop t ~level ~(entry : Entry.t) ~info =
  t.resubmissions <- t.resubmissions + 1;
  Causal.spin entry.task.id ~at:(Engine.now t.engine);
  Obs.Recorder.count "switch.resubmissions" 1;
  [ recirc t ~kind:"resubmit" (Switch_packet.Resubmit { level; entry }); noop_to t info ]

let handle_swap t ctx ~level ~entry ~swap_indx ~info ~pkt_retrieve_ptr ~attempts
    ~requested_at =
  let q = t.queues.(level) in
  let add_ptr, retrieve_ptr = Circular_queue.read_pointers q ctx in
  (* §5.1 staleness guard: if the retrieve pointer moved past our
     snapshot, swapping at SWAP_INDX could strand the packet's task in a
     slot the pointer already passed; swap with the head instead.  All
     comparisons are wrap-aware. *)
  let target, pkt_retrieve_ptr =
    if Circular_queue.is_ahead q retrieve_ptr pkt_retrieve_ptr then
      (retrieve_ptr, retrieve_ptr)
    else (swap_indx, pkt_retrieve_ptr)
  in
  let pending = Circular_queue.distance q ~ahead:add_ptr ~behind:retrieve_ptr in
  let pending = if pending > Circular_queue.wrap_modulus q / 2 then 0 else pending in
  let bound = Policy.swap_bound t.policy ~queue_occupancy:pending in
  let past_end = not (Circular_queue.is_ahead q add_ptr target) in
  if past_end || attempts >= bound then
    (* End of queue: nothing the executor can run; the packet is treated
       as a job_submission on its next traversal and the executor gets a
       no-op (§5.1). *)
    resubmit_and_noop t ~level ~entry ~info
  else begin
    match Circular_queue.swap q ctx ~index:target entry with
    | Circular_queue.Slot_invalid -> resubmit_and_noop t ~level ~entry ~info
    | Circular_queue.Swapped popped ->
      t.instrument.on_dequeue popped.task.id ~level;
      t.instrument.on_enqueue entry.task.id ~level;
      t.instrument.on_swap ~swapped_in:entry.task.id ~swapped_out:popped.task.id ~level;
      let now = Engine.now t.engine in
      Causal.dequeue popped.task.id ~at:now;
      Causal.flag_swap popped.task.id;
      Causal.enqueue entry.task.id ~at:now ~level;
      let popped = bump_skip popped in
      if Policy.satisfies t.policy ~entry:popped ~info then
        [ assign_to t info popped ~requested_at ]
      else begin
        t.swaps <- t.swaps + 1;
        Causal.spin popped.task.id ~at:now;
        Obs.Recorder.count "switch.swaps" 1;
        [ recirc t ~kind:"swap"
            (Switch_packet.Swap
               {
                 level;
                 entry = popped;
                 swap_indx = Circular_queue.next_index q target;
                 info;
                 pkt_retrieve_ptr;
                 attempts = attempts + 1;
                 requested_at;
               });
        ]
      end
  end

(* -- resubmission --------------------------------------------------------- *)

let handle_resubmit t ctx ~level (entry : Entry.t) =
  match enqueue_entry t ctx ~level entry with
  | Circular_queue.Enqueued { index = _; retrieve_repair } ->
    retrieve_repair_output t ~level retrieve_repair
  | Circular_queue.Rejected { add_repair; retrieve_repair } ->
    (* The queue filled while the task was travelling; bounce it to its
       client like any full-queue submission. *)
    t.rejected_tasks <- t.rejected_tasks + 1;
    t.instrument.on_reject 1;
    Causal.reject entry.task.id ~at:(Engine.now t.engine);
    Obs.Recorder.count "switch.rejected_tasks" 1;
    let repairs =
      match add_repair with
      | None -> []
      | Some target ->
        t.repairs_launched <- t.repairs_launched + 1;
        repair_flag_tripped t Instrument.Add_flag ~level;
        Obs.Recorder.count "switch.repairs_launched" 1;
        [ recirc t ~kind:"repair-add" (Switch_packet.Repair_add { level; target }) ]
    in
    let repairs = repairs @ retrieve_repair_output t ~level retrieve_repair in
    let task = entry.task in
    repairs
    @ [ Pipeline.Emit
          ( entry.client,
            Message.Queue_full { uid = task.id.uid; jid = task.id.jid; tasks = [ task ] }
          );
      ]

(* -- the program ----------------------------------------------------------- *)

let program t : (Message.t, Switch_packet.t) Pipeline.program =
 fun ctx pkt ->
  let now = Engine.now t.engine in
  match pkt with
  | Switch_packet.Wire (Job_submission { client; uid; jid; tasks }) ->
    handle_submission t ctx ~client ~uid ~jid ~tasks
  | Switch_packet.Wire (Task_request { info; rtrv_prio }) ->
    handle_request t ctx info ~rtrv_prio ~requested_at:now
  | Switch_packet.Prio_request { info; rtrv_prio; requested_at } ->
    handle_request t ctx info ~rtrv_prio ~requested_at
  | Switch_packet.Wire (Task_completion { task_id = _; client; info; rtrv_prio } as completion) ->
    (* Forward the completion to the client and serve the piggybacked
       request for the executor's next task (§3.1). *)
    Pipeline.Emit (client, completion)
    :: handle_request t ctx info ~rtrv_prio ~requested_at:now
  | Switch_packet.Repair_add { level; target } ->
    Circular_queue.apply_repair_add t.queues.(level) ctx ~target;
    []
  | Switch_packet.Repair_retrieve { level; target } ->
    Circular_queue.apply_repair_retrieve t.queues.(level) ctx ~target;
    []
  | Switch_packet.Swap { level; entry; swap_indx; info; pkt_retrieve_ptr; attempts; requested_at } ->
    handle_swap t ctx ~level ~entry ~swap_indx ~info ~pkt_retrieve_ptr ~attempts
      ~requested_at
  | Switch_packet.Resubmit { level; entry } -> handle_resubmit t ctx ~level entry
  | Switch_packet.Wire
      ( Job_ack _ | Queue_full _ | Task_assignment _ | Noop_assignment _
      | Param_fetch _ | Param_data _ ) ->
    (* Not scheduler traffic; a real deployment forwards such packets as
       a regular switch (§4.1), but no simulated host addresses them to
       the scheduler, so count them out. *)
    [ Pipeline.Drop ]
