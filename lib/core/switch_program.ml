open Draconis_sim
open Draconis_p4
open Draconis_pifo
open Draconis_proto
module Obs = Draconis_obs

(* The queue substrate behind the program: the paper's circular queues,
   or a rank store for the PIFO-backed disciplines.  [vft] is WFQ's
   per-tenant virtual-finish-time register. *)
type backend =
  | Queues of Circular_queue.t array
  | Rank_store of { pifo : Pifo.t; vft : Register.t option }

type t = {
  engine : Engine.t;
  policy : Policy.t;
  backend : backend;
  instrument : Instrument.t;
  mutable assignments : int;
  mutable noops : int;
  mutable rejected_tasks : int;
  mutable swaps : int;
  mutable resubmissions : int;
  mutable repairs_launched : int;
}

(* An in-switch PIFO cannot be deep: every pop spends one recirculation
   per rank-store row, so rows — and with them capacity — must stay
   small (see lib/pifo).  [pifo_scan_width] banks keeps the store within
   the stage register budget while bounding a full scan to
   [capacity / scan_width] traversals. *)
let pifo_scan_width = 16
let pifo_capacity_limit = 4096
let max_pop_restarts = 3

let create ~engine ?(instrument = Instrument.default) ~policy ~queue_capacity () =
  if queue_capacity < 1 then
    invalid_arg "Switch_program.create: queue_capacity must be >= 1";
  Policy.validate policy;
  let backend =
    match Policy.backend policy with
    | Policy.Circular ->
      let levels = Policy.queue_count policy in
      Queues
        (Array.init levels (fun level ->
             Circular_queue.create
               ~name:(Printf.sprintf "queue%d" level)
               ~capacity:queue_capacity ()))
    | Policy.Pifo ->
      if queue_capacity > pifo_capacity_limit then
        invalid_arg
          (Printf.sprintf
             "Switch_program.create: PIFO capacity %d exceeds %d (a pop \
              recirculates once per rank-store row; deep PIFOs are the point \
              of the circular queue)"
             queue_capacity pifo_capacity_limit);
      let scan_width = min pifo_scan_width queue_capacity in
      if queue_capacity mod scan_width <> 0 then
        invalid_arg
          (Printf.sprintf
             "Switch_program.create: PIFO capacity %d must be a multiple of \
              the scan width %d"
             queue_capacity scan_width);
      let pifo =
        Pifo.create ~name:"pifo" ~capacity:queue_capacity ~scan_width
          ~word_count:Entry.word_count ()
      in
      let vft =
        match policy with
        | Policy.Wfq { weights; _ } ->
          Some (Register.create ~name:"pifo.vft" ~size:(Array.length weights) ())
        | _ -> None
      in
      Rank_store { pifo; vft }
  in
  {
    engine;
    policy;
    backend;
    instrument;
    assignments = 0;
    noops = 0;
    rejected_tasks = 0;
    swaps = 0;
    resubmissions = 0;
    repairs_launched = 0;
  }

let policy t = t.policy

let queues_exn t =
  match t.backend with
  | Queues queues -> queues
  | Rank_store _ ->
    invalid_arg "Switch_program: PIFO-backed policy has no circular queue"

let queue t level =
  let queues = queues_exn t in
  if level < 0 || level >= Array.length queues then
    invalid_arg "Switch_program.queue: bad level";
  queues.(level)

let pifo t =
  match t.backend with Rank_store { pifo; _ } -> Some pifo | Queues _ -> None

let total_occupancy t =
  match t.backend with
  | Queues queues ->
    Array.fold_left (fun acc q -> acc + Circular_queue.occupancy q) 0 queues
  | Rank_store { pifo; _ } -> Pifo.occupancy pifo

let registers t =
  match t.backend with
  | Queues queues -> Array.to_list queues |> List.concat_map Circular_queue.registers
  | Rank_store { pifo; vft } ->
    Pifo.registers pifo @ (match vft with Some r -> [ r ] | None -> [])

let assignments t = t.assignments
let noops t = t.noops
let rejected_tasks t = t.rejected_tasks
let swaps t = t.swaps
let resubmissions t = t.resubmissions
let repairs_launched t = t.repairs_launched

(* -- helpers -------------------------------------------------------------- *)

(* Every recirculation the program produces flows through here so the
   instrument hook and the observability counter cannot drift apart. *)
let recirc t ~kind pkt =
  t.instrument.on_recirculate ~kind;
  Obs.Recorder.count "switch.recirculations" 1;
  Pipeline.Recirculate pkt

(* A pointer-repair flag tripped (§4.7): the queue is in its degraded
   window until the repair packet lands. *)
let repair_flag_tripped t flag ~level =
  t.instrument.on_repair_flag flag ~level;
  Causal.repair_window ~level;
  Obs.Recorder.count "queue.repair_flags" 1;
  if Obs.Recorder.active () then
    Obs.Recorder.mark ~at:(Engine.now t.engine) ~track:"queue"
      (Printf.sprintf "repair-%s L%d" (Instrument.repair_flag_name flag) level)

let noop_to t (info : Message.executor_info) =
  t.noops <- t.noops + 1;
  t.instrument.on_noop ();
  Obs.Recorder.count "switch.noops" 1;
  Pipeline.Emit (info.exec_addr, Message.Noop_assignment { port = info.exec_port })

let assign_to t (info : Message.executor_info) (entry : Entry.t) ~requested_at =
  t.assignments <- t.assignments + 1;
  t.instrument.on_assign entry.task.id ~node:info.exec_node ~requested_at;
  Causal.assign entry.task.id ~at:(Engine.now t.engine);
  Obs.Recorder.count "switch.assignments" 1;
  Pipeline.Emit
    ( info.exec_addr,
      Message.Task_assignment
        { task = entry.task; client = entry.client; port = info.exec_port } )

let retrieve_repair_output t ~level = function
  | None -> []
  | Some target ->
    t.repairs_launched <- t.repairs_launched + 1;
    repair_flag_tripped t Instrument.Retrieve_flag ~level;
    Obs.Recorder.count "switch.repairs_launched" 1;
    if Trace.enabled () then
      Trace.emit ~at:(Engine.now t.engine) Trace.Queue
        (lazy (Printf.sprintf "retrieve repair level=%d target=%d" level target));
    [ recirc t ~kind:"repair-retrieve" (Switch_packet.Repair_retrieve { level; target }) ]

(* Enqueue one entry; shared by job submissions and task resubmission. *)
let enqueue_entry t ctx ~level (entry : Entry.t) =
  if Obs.Int_telemetry.enabled () then Obs.Int_telemetry.note_level level;
  let outcome = Circular_queue.enqueue (queues_exn t).(level) ctx entry in
  (match outcome with
  | Circular_queue.Enqueued _ ->
    t.instrument.on_enqueue entry.task.id ~level;
    Causal.enqueue entry.task.id ~at:(Engine.now t.engine) ~level
  | Circular_queue.Rejected _ -> ());
  outcome

(* -- job submission (§4.3) ------------------------------------------------ *)

let handle_submission t ctx ~client ~uid ~jid ~tasks =
  match tasks with
  | [] -> [ Pipeline.Emit (client, Message.Job_ack { uid; jid }) ]
  | task :: rest ->
    let level = Policy.queue_of_task t.policy task in
    let entry = Entry.make ~task ~client () in
    (match enqueue_entry t ctx ~level entry with
    | Circular_queue.Enqueued { index = _; retrieve_repair } ->
      let repairs = retrieve_repair_output t ~level retrieve_repair in
      let continuation =
        (* Remaining tasks ride a recirculation with a decremented
           #TASKS, exactly as the hardware reprocesses the packet. *)
        if rest = [] then [ Pipeline.Emit (client, Message.Job_ack { uid; jid }) ]
        else begin
          List.iter
            (fun (task : Task.t) -> Causal.spin task.id ~at:(Engine.now t.engine))
            rest;
          [ recirc t ~kind:"submission"
              (Switch_packet.Wire (Job_submission { client; uid; jid; tasks = rest }));
          ]
        end
      in
      repairs @ continuation
    | Circular_queue.Rejected { add_repair; retrieve_repair } ->
      (* Bounce every not-yet-enqueued task back to the client (§4.3). *)
      t.rejected_tasks <- t.rejected_tasks + List.length tasks;
      t.instrument.on_reject (List.length tasks);
      List.iter
        (fun (task : Task.t) -> Causal.reject task.id ~at:(Engine.now t.engine))
        tasks;
      Obs.Recorder.count "switch.rejected_tasks" (List.length tasks);
      let repairs =
        match add_repair with
        | None -> []
        | Some target ->
          t.repairs_launched <- t.repairs_launched + 1;
          repair_flag_tripped t Instrument.Add_flag ~level;
          Obs.Recorder.count "switch.repairs_launched" 1;
          [ recirc t ~kind:"repair-add" (Switch_packet.Repair_add { level; target }) ]
      in
      let repairs = repairs @ retrieve_repair_output t ~level retrieve_repair in
      repairs @ [ Pipeline.Emit (client, Message.Queue_full { uid; jid; tasks }) ])

(* -- task retrieval (§4.6, §5.1, §6.1) ------------------------------------ *)

(* A popped (or swapped-in) task that fails the policy check has been
   examined and skipped once more (§5.3). *)
let bump_skip (entry : Entry.t) = { entry with skip = entry.skip + 1 }

let start_swap t ~level ~(entry : Entry.t) ~index ~info ~requested_at =
  t.swaps <- t.swaps + 1;
  Causal.flag_swap entry.task.id;
  Causal.spin entry.task.id ~at:(Engine.now t.engine);
  Obs.Recorder.count "switch.swaps" 1;
  let next = Circular_queue.next_index (queues_exn t).(level) index in
  recirc t ~kind:"swap"
    (Switch_packet.Swap
       {
         level;
         entry;
         swap_indx = next;
         info;
         pkt_retrieve_ptr = next;
         attempts = 0;
         requested_at;
       })

let handle_request t ctx (info : Message.executor_info) ~rtrv_prio ~requested_at =
  let queues = queues_exn t in
  let levels = Array.length queues in
  if rtrv_prio < 1 || rtrv_prio > levels then [ noop_to t info ]
  else begin
    let level = rtrv_prio - 1 in
    if Obs.Int_telemetry.enabled () then Obs.Int_telemetry.note_level level;
    match Circular_queue.dequeue queues.(level) ctx with
    | Circular_queue.Repair_pending -> [ noop_to t info ]
    | Circular_queue.Empty ->
      (* Priority policy: scan the next-lower priority level via
         recirculation (§6.1); otherwise report no work. *)
      if rtrv_prio < levels then
        [ recirc t ~kind:"prio-request"
            (Switch_packet.Prio_request { info; rtrv_prio = rtrv_prio + 1; requested_at });
        ]
      else [ noop_to t info ]
    | Circular_queue.Dequeued { index; entry } ->
      t.instrument.on_dequeue entry.task.id ~level;
      Causal.dequeue entry.task.id ~at:(Engine.now t.engine);
      if not (Policy.uses_swapping t.policy) then
        [ assign_to t info entry ~requested_at ]
      else begin
        let entry = bump_skip entry in
        if Policy.satisfies t.policy ~entry ~info then
          [ assign_to t info entry ~requested_at ]
        else [ start_swap t ~level ~entry ~index ~info ~requested_at ]
      end
  end

(* -- task swapping (§5.1) -------------------------------------------------- *)

let resubmit_and_noop t ~level ~(entry : Entry.t) ~info =
  t.resubmissions <- t.resubmissions + 1;
  Causal.spin entry.task.id ~at:(Engine.now t.engine);
  Obs.Recorder.count "switch.resubmissions" 1;
  [ recirc t ~kind:"resubmit" (Switch_packet.Resubmit { level; entry }); noop_to t info ]

let handle_swap t ctx ~level ~entry ~swap_indx ~info ~pkt_retrieve_ptr ~attempts
    ~requested_at =
  if Obs.Int_telemetry.enabled () then Obs.Int_telemetry.note_level level;
  let q = (queues_exn t).(level) in
  let add_ptr, retrieve_ptr = Circular_queue.read_pointers q ctx in
  (* §5.1 staleness guard: if the retrieve pointer moved past our
     snapshot, swapping at SWAP_INDX could strand the packet's task in a
     slot the pointer already passed; swap with the head instead.  All
     comparisons are wrap-aware. *)
  let target, pkt_retrieve_ptr =
    if Circular_queue.is_ahead q retrieve_ptr pkt_retrieve_ptr then
      (retrieve_ptr, retrieve_ptr)
    else (swap_indx, pkt_retrieve_ptr)
  in
  let pending = Circular_queue.distance q ~ahead:add_ptr ~behind:retrieve_ptr in
  let pending = if pending > Circular_queue.wrap_modulus q / 2 then 0 else pending in
  let bound = Policy.swap_bound t.policy ~queue_occupancy:pending in
  let past_end = not (Circular_queue.is_ahead q add_ptr target) in
  if past_end || attempts >= bound then
    (* End of queue: nothing the executor can run; the packet is treated
       as a job_submission on its next traversal and the executor gets a
       no-op (§5.1). *)
    resubmit_and_noop t ~level ~entry ~info
  else begin
    match Circular_queue.swap q ctx ~index:target entry with
    | Circular_queue.Slot_invalid -> resubmit_and_noop t ~level ~entry ~info
    | Circular_queue.Swapped popped ->
      t.instrument.on_dequeue popped.task.id ~level;
      t.instrument.on_enqueue entry.task.id ~level;
      t.instrument.on_swap ~swapped_in:entry.task.id ~swapped_out:popped.task.id ~level;
      let now = Engine.now t.engine in
      Causal.dequeue popped.task.id ~at:now;
      Causal.flag_swap popped.task.id;
      Causal.enqueue entry.task.id ~at:now ~level;
      let popped = bump_skip popped in
      if Policy.satisfies t.policy ~entry:popped ~info then
        [ assign_to t info popped ~requested_at ]
      else begin
        t.swaps <- t.swaps + 1;
        Causal.spin popped.task.id ~at:now;
        Obs.Recorder.count "switch.swaps" 1;
        [ recirc t ~kind:"swap"
            (Switch_packet.Swap
               {
                 level;
                 entry = popped;
                 swap_indx = Circular_queue.next_index q target;
                 info;
                 pkt_retrieve_ptr;
                 attempts = attempts + 1;
                 requested_at;
               });
        ]
      end
  end

(* -- resubmission --------------------------------------------------------- *)

let handle_resubmit t ctx ~level (entry : Entry.t) =
  match enqueue_entry t ctx ~level entry with
  | Circular_queue.Enqueued { index = _; retrieve_repair } ->
    retrieve_repair_output t ~level retrieve_repair
  | Circular_queue.Rejected { add_repair; retrieve_repair } ->
    (* The queue filled while the task was travelling; bounce it to its
       client like any full-queue submission. *)
    t.rejected_tasks <- t.rejected_tasks + 1;
    t.instrument.on_reject 1;
    Causal.reject entry.task.id ~at:(Engine.now t.engine);
    Obs.Recorder.count "switch.rejected_tasks" 1;
    let repairs =
      match add_repair with
      | None -> []
      | Some target ->
        t.repairs_launched <- t.repairs_launched + 1;
        repair_flag_tripped t Instrument.Add_flag ~level;
        Obs.Recorder.count "switch.repairs_launched" 1;
        [ recirc t ~kind:"repair-add" (Switch_packet.Repair_add { level; target }) ]
    in
    let repairs = repairs @ retrieve_repair_output t ~level retrieve_repair in
    let task = entry.task in
    repairs
    @ [ Pipeline.Emit
          ( entry.client,
            Message.Queue_full { uid = task.id.uid; jid = task.id.jid; tasks = [ task ] }
          );
      ]

(* -- PIFO-backed disciplines (admission, multi-traversal pops) ------------- *)

(* Rank computation rides the admission traversal; every register it
   touches (WFQ's vft) is distinct from the PIFO's own arrays, so the
   traversal stays within the one-access-per-register rule. *)
let pifo_rank t ctx vft (task : Task.t) =
  let now = Engine.now t.engine in
  match t.policy with
  | Policy.Edf { default_deadline } ->
    (* Rank = absolute deadline. *)
    now + Option.value ~default:default_deadline (Task.relative_deadline task)
  | Policy.Wfq { quantum; weights } ->
    let n = Array.length weights in
    let tenant =
      match Task.tenant task with
      | Some id when id >= 0 && id < n -> id
      | Some _ -> n - 1
      | None -> 0
    in
    let cost = max 1 (quantum / weights.(tenant)) in
    let reg = Option.get vft in
    (* Virtual finish time F = max(prev, now) + quantum/weight; the
       stateful ALU hands the updated value back in packet metadata.
       Note the clock advances even if the occupancy gate later bounces
       the task — the ALUs fire in stage order on real hardware too. *)
    let finish = ref 0 in
    ignore
      (Register.read_modify_write reg ctx tenant (fun prev ->
           let f = (if prev > now then prev else now) + cost in
           finish := f;
           f));
    !finish
  | Policy.Aging_priority { levels; quantum } ->
    (* Strict priority with aging: one level costs [quantum] of queue
       age, so lower-priority tasks overtake once they are old enough. *)
    let p = Task.priority_level task in
    let p = if p < 1 then 1 else if p > levels then levels else p in
    now + ((p - 1) * quantum)
  | Policy.Fcfs | Policy.Resource_aware _ | Policy.Locality_aware _
  | Policy.Priority _ ->
    now

let pifo_admitted t pifo (task : Task.t) ~packed =
  t.instrument.on_rank task.id ~rank:(Pifo.rank_of_packed packed);
  t.instrument.on_enqueue task.id ~level:0;
  Causal.enqueue task.id ~at:(Engine.now t.engine) ~level:0;
  if Pifo.needs_renumber pifo then begin
    (* Switch-CPU stamp compaction; in-flight scans lose their claims
       through the epoch bump and restart. *)
    Pifo.renumber pifo;
    Obs.Recorder.count "pifo.renumbers" 1
  end

let pifo_reject t ~client ~uid ~jid tasks =
  t.rejected_tasks <- t.rejected_tasks + List.length tasks;
  t.instrument.on_reject (List.length tasks);
  List.iter
    (fun (task : Task.t) -> Causal.reject task.id ~at:(Engine.now t.engine))
    tasks;
  Obs.Recorder.count "switch.rejected_tasks" (List.length tasks);
  [ Pipeline.Emit (client, Message.Queue_full { uid; jid; tasks }) ]

let pifo_continue t ~client ~uid ~jid rest =
  if rest = [] then [ Pipeline.Emit (client, Message.Job_ack { uid; jid }) ]
  else begin
    List.iter
      (fun (task : Task.t) -> Causal.spin task.id ~at:(Engine.now t.engine))
      rest;
    [ recirc t ~kind:"submission"
        (Switch_packet.Wire (Job_submission { client; uid; jid; tasks = rest }));
    ]
  end

let pifo_admit_outcome t pifo ~client ~uid ~jid ~(task : Task.t) ~rest = function
  | Pifo.Admitted { slot = _; packed } ->
    pifo_admitted t pifo task ~packed;
    pifo_continue t ~client ~uid ~jid rest
  | Pifo.Probing probe ->
    (* Probe row was full: the admission recirculates with an advanced
       row cursor. *)
    Causal.spin task.id ~at:(Engine.now t.engine);
    [ recirc t ~kind:"pifo-probe"
        (Switch_packet.Pifo_admit { probe; task; client; uid; jid; rest });
    ]
  | Pifo.Full ->
    (* Occupancy gate (or probe budget): bounce every not-yet-admitted
       task back to the client, like a full circular queue (§4.3). *)
    pifo_reject t ~client ~uid ~jid (task :: rest)

let handle_pifo_submission t ctx pifo vft ~client ~uid ~jid ~tasks =
  match tasks with
  | [] -> [ Pipeline.Emit (client, Message.Job_ack { uid; jid }) ]
  | task :: rest ->
    let rank = pifo_rank t ctx vft task in
    let words = Entry.to_words (Entry.make ~task ~client ()) in
    pifo_admit_outcome t pifo ~client ~uid ~jid ~task ~rest
      (Pifo.admit pifo ctx ~rank ~words)

let pifo_pop_next t ~info ~requested_at ~restarts = function
  | Pifo.Empty | Pifo.Drained ->
    (* Nothing claimable (drained scans race in-flight admissions): the
       executor gets a no-op and polls again. *)
    [ noop_to t info ]
  | Pifo.Scanning s ->
    [ recirc t ~kind:"pifo-scan"
        (Switch_packet.Pifo_pop
           { step = Switch_packet.Pop_scan s; info; requested_at; restarts });
    ]
  | Pifo.Ready c ->
    (* The claim needs its own traversal: the final scan traversal
       already accessed the winner's bank register. *)
    [ recirc t ~kind:"pifo-claim"
        (Switch_packet.Pifo_pop
           { step = Switch_packet.Pop_claim c; info; requested_at; restarts });
    ]

let handle_pifo_pop t ctx pifo ~info ~requested_at ~restarts step =
  match step with
  | Switch_packet.Pop_start ->
    t.instrument.on_pop_scan ();
    pifo_pop_next t ~info ~requested_at ~restarts (Pifo.scan_start pifo ctx)
  | Switch_packet.Pop_scan s ->
    pifo_pop_next t ~info ~requested_at ~restarts (Pifo.scan_step pifo ctx s)
  | Switch_packet.Pop_claim c -> (
    match Pifo.claim pifo ctx c with
    | Pifo.Claimed { slot = _; packed = _; words } ->
      let entry = Entry.of_words words in
      t.instrument.on_dequeue entry.task.id ~level:0;
      Causal.dequeue entry.task.id ~at:(Engine.now t.engine);
      [ assign_to t info entry ~requested_at ]
    | Pifo.Lost ->
      (* Raced by another claimer or invalidated by a renumber. *)
      if restarts >= max_pop_restarts then [ noop_to t info ]
      else
        [ recirc t ~kind:"pifo-restart"
            (Switch_packet.Pifo_pop
               {
                 step = Switch_packet.Pop_start;
                 info;
                 requested_at;
                 restarts = restarts + 1;
               });
        ])

(* Serve an executor's task request on whichever backend the policy
   deployed. *)
let serve_request t ctx info ~rtrv_prio ~requested_at =
  match t.backend with
  | Queues _ -> handle_request t ctx info ~rtrv_prio ~requested_at
  | Rank_store { pifo; _ } ->
    handle_pifo_pop t ctx pifo ~info ~requested_at ~restarts:0
      Switch_packet.Pop_start

(* -- the program ----------------------------------------------------------- *)

(* INT stage id of a packet kind, stamped once per traversal at
   dispatch.  The per-stage latency breakdown in the collector keys off
   these names. *)
let int_stage = function
  | Switch_packet.Wire (Job_submission _) -> Obs.Int_telemetry.Submission
  | Switch_packet.Wire (Task_request _) -> Obs.Int_telemetry.Request
  | Switch_packet.Wire (Task_completion _) -> Obs.Int_telemetry.Completion
  | Switch_packet.Prio_request _ -> Obs.Int_telemetry.Prio_scan
  | Switch_packet.Pifo_admit _ -> Obs.Int_telemetry.Pifo_probe
  | Switch_packet.Pifo_pop { step = Switch_packet.Pop_claim _; _ } ->
    Obs.Int_telemetry.Pifo_claim
  | Switch_packet.Pifo_pop _ -> Obs.Int_telemetry.Pifo_scan
  | Switch_packet.Repair_add _ -> Obs.Int_telemetry.Repair_add
  | Switch_packet.Repair_retrieve _ -> Obs.Int_telemetry.Repair_retrieve
  | Switch_packet.Swap _ -> Obs.Int_telemetry.Swap
  | Switch_packet.Resubmit _ -> Obs.Int_telemetry.Resubmit
  | Switch_packet.Wire _ -> Obs.Int_telemetry.Forward

let program t : (Message.t, Switch_packet.t) Pipeline.program =
 fun ctx pkt ->
  let now = Engine.now t.engine in
  if Obs.Int_telemetry.enabled () then Obs.Int_telemetry.note_stage (int_stage pkt);
  match pkt with
  | Switch_packet.Wire (Job_submission { client; uid; jid; tasks }) -> (
    match t.backend with
    | Queues _ -> handle_submission t ctx ~client ~uid ~jid ~tasks
    | Rank_store { pifo; vft } ->
      handle_pifo_submission t ctx pifo vft ~client ~uid ~jid ~tasks)
  | Switch_packet.Wire (Task_request { info; rtrv_prio }) ->
    serve_request t ctx info ~rtrv_prio ~requested_at:now
  | Switch_packet.Prio_request { info; rtrv_prio; requested_at } ->
    handle_request t ctx info ~rtrv_prio ~requested_at
  | Switch_packet.Wire (Task_completion { task_id = _; client; info; rtrv_prio } as completion) ->
    (* Forward the completion to the client and serve the piggybacked
       request for the executor's next task (§3.1). *)
    Pipeline.Emit (client, completion)
    :: serve_request t ctx info ~rtrv_prio ~requested_at:now
  | Switch_packet.Pifo_admit { probe; task; client; uid; jid; rest } -> (
    match t.backend with
    | Rank_store { pifo; _ } ->
      pifo_admit_outcome t pifo ~client ~uid ~jid ~task ~rest
        (Pifo.probe pifo ctx probe)
    | Queues _ -> [ Pipeline.Drop ])
  | Switch_packet.Pifo_pop { step; info; requested_at; restarts } -> (
    match t.backend with
    | Rank_store { pifo; _ } ->
      handle_pifo_pop t ctx pifo ~info ~requested_at ~restarts step
    | Queues _ -> [ noop_to t info ])
  | Switch_packet.Repair_add { level; target } ->
    if Obs.Int_telemetry.enabled () then Obs.Int_telemetry.note_level level;
    Circular_queue.apply_repair_add (queues_exn t).(level) ctx ~target;
    []
  | Switch_packet.Repair_retrieve { level; target } ->
    if Obs.Int_telemetry.enabled () then Obs.Int_telemetry.note_level level;
    Circular_queue.apply_repair_retrieve (queues_exn t).(level) ctx ~target;
    []
  | Switch_packet.Swap { level; entry; swap_indx; info; pkt_retrieve_ptr; attempts; requested_at } ->
    handle_swap t ctx ~level ~entry ~swap_indx ~info ~pkt_retrieve_ptr ~attempts
      ~requested_at
  | Switch_packet.Resubmit { level; entry } -> handle_resubmit t ctx ~level entry
  | Switch_packet.Wire
      ( Job_ack _ | Queue_full _ | Task_assignment _ | Noop_assignment _
      | Param_fetch _ | Param_data _ ) ->
    (* Not scheduler traffic; a real deployment forwards such packets as
       a regular switch (§4.1), but no simulated host addresses them to
       the scheduler, so count them out. *)
    [ Pipeline.Drop ]
