(** P4-compatible circular task queue with delayed pointer correction
    (paper §4.2, §4.5, §4.7) — Draconis' central data structure.

    The queue lives entirely in switch {!Draconis_p4.Register} arrays
    and every data-path operation obeys the one-access-per-register-
    per-packet rule (violations raise, see {!Draconis_p4.Packet_ctx}).

    Two 32-bit pointers index the queue: [add_ptr] (next empty slot)
    and [retrieve_ptr] (next task to schedule); a pointer [p] maps to
    slot [p mod capacity].  The pointers wrap at the largest multiple of
    the capacity that fits in 32 bits, so the slot mapping stays
    continuous across wraparound — at the paper's 58M decisions/s a
    32-bit pointer wraps in ~74 seconds, so a deployment cannot ignore
    it.  All pointer comparisons are wrap-aware (the capacity is bounded
    far below half the wrap range, so distances disambiguate).  Because
    a packet cannot check-then-increment a pointer, both operations use
    one atomic [read_and_increment] and {e optimistically} increment
    even when the queue is full/empty; the mistaken increment is
    corrected by a later repair packet:

    - a full-queue enqueue mistake is repaired immediately — the
      detecting packet launches a repair (guarded by a repair flag so
      only one is in flight) that resets [add_ptr] to the pre-mistake
      value;
    - an empty-queue dequeue mistake is repaired {e lazily} on the next
      successful enqueue, which detects [retrieve_ptr > add_ptr] and
      launches a repair pointing [retrieve_ptr] at the newly added task.

    Entry slots carry a stamp register holding the write-index of the
    occupying task; a dequeue is valid only if the stamp equals the
    pointer value it popped, which is the "is the retrieved task valid"
    check of §4.5 and also protects the sub-microsecond window where a
    pointer is inflated but its repair has not yet landed.

    The caller (the switch program) is responsible for recirculating
    the repair packets this module requests via outcome values, exactly
    as the hardware pipeline recirculates repair packets. *)

open Draconis_p4

type t

(** [create ~name ~capacity ()] allocates the register arrays.
    @raise Invalid_argument if [capacity < 1] or [capacity > 2^28]
    (pointer distances must stay far below half the wrap range). *)
val create : name:string -> capacity:int -> unit -> t

(** The pointer wrap modulus: the largest multiple of [capacity] that is
    at most 2^32. *)
val wrap_modulus : t -> int

val capacity : t -> int
val name : t -> string

(** {2 Wrap-aware pointer arithmetic} — for switch programs that carry
    pointer snapshots in packet metadata. *)

(** [next_index t p] is [p + 1] modulo the wrap modulus. *)
val next_index : t -> int -> int

(** [distance t ~ahead ~behind] is how far [ahead] is past [behind] in
    wrap order, in [\[0, wrap)]. *)
val distance : t -> ahead:int -> behind:int -> int

(** [is_ahead t a b] is true when [a] is strictly ahead of [b]
    (interpreting distances beyond half the wrap range as behind). *)
val is_ahead : t -> int -> int -> bool

type enqueue_outcome =
  | Enqueued of { index : int; retrieve_repair : int option }
      (** task stored at write-index [index]; if [retrieve_repair] is
          [Some target] this packet must launch a retrieve-pointer
          repair with that target (§4.5) *)
  | Rejected of { add_repair : int option; retrieve_repair : int option }
      (** queue full — by pointer distance, or (while a retrieve
          repair is in flight, when the retrieve pointer is inflated)
          by distance to the pending repair target, which the flag
          register carries; if [add_repair] is [Some target] this
          packet must launch the add-pointer repair, and if
          [retrieve_repair] is [Some target] it detected a retrieve
          overrun while an add repair was already in flight and must
          launch the retrieve repair too *)

(** [enqueue t ctx entry] is the job-submission path: one access each to
    [add_ptr], [retrieve_ptr], both repair flags, and (on success) the
    entry arrays. *)
val enqueue : t -> Packet_ctx.t -> Entry.t -> enqueue_outcome

type dequeue_outcome =
  | Dequeued of { index : int; entry : Entry.t }
  | Empty  (** no valid task; pointer overran and awaits lazy repair *)
  | Repair_pending
      (** a retrieve repair is in flight; caller returns a no-op
          (§4.7.2) *)

(** [dequeue t ctx] is the task-request path. *)
val dequeue : t -> Packet_ctx.t -> dequeue_outcome

(** [apply_repair_add t ctx ~target] is the repair-packet path: resets
    [add_ptr] to [target] and clears the add-repair flag. *)
val apply_repair_add : t -> Packet_ctx.t -> target:int -> unit

(** [apply_repair_retrieve t ctx ~target] resets [retrieve_ptr] and
    clears the retrieve-repair flag. *)
val apply_repair_retrieve : t -> Packet_ctx.t -> target:int -> unit

(** [read_pointers t ctx] reads [(add_ptr, retrieve_ptr)] — used by
    swap packets, which must not increment either pointer (§5.1). *)
val read_pointers : t -> Packet_ctx.t -> int * int

type swap_outcome =
  | Swapped of Entry.t  (** the entry previously occupying the slot *)
  | Slot_invalid
      (** the slot does not hold a pending task (repair window); the
          caller should fall back to resubmission *)

(** [swap t ctx ~index entry] exchanges [entry] with the task at
    write-index [index] without moving either pointer — the task-swap
    primitive behind constraint-based policies (§5.1).  Each entry
    array is touched by exactly one read-modify-write. *)
val swap : t -> Packet_ctx.t -> index:int -> Entry.t -> swap_outcome

(** {2 Control-plane / test access} — not usable from the data path. *)

(** Tasks currently queued, by pointer difference (may be transiently
    inflated during a repair window). *)
val occupancy : t -> int

val peek_add_ptr : t -> int
val peek_retrieve_ptr : t -> int
val peek_add_repair_flag : t -> bool
val peek_retrieve_repair_flag : t -> bool

(** [peek_entry t ~index] reads a slot if it holds a pending task
    stamped with [index]. *)
val peek_entry : t -> index:int -> Entry.t option

(** Total register bits this queue occupies (resource accounting). *)
val register_bits : t -> int

(** [unsafe_set_pointers_for_test t ~add ~retrieve] control-plane pokes
    both pointers (tests exercising wraparound).  Values are taken mod
    the wrap modulus. *)
val unsafe_set_pointers_for_test : t -> add:int -> retrieve:int -> unit

(** {2 Correctness-check kill switches} — fuzz-harness self-test only.

    Setting one of these disables a safety check of the optimistic
    pointer protocol, deliberately re-introducing the class of bug the
    check prevents.  {!Draconis_fuzz} flips them (run-scoped) to prove
    its oracle catches each class; production code must never touch
    them. *)

(** When true, [dequeue] skips the §4.5 stamp-validity test and treats
    every slot as holding a valid task — empty polls then resurrect
    stale or never-written entries. *)
val debug_skip_stamp_check : bool ref

(** When true, [enqueue] never detects a retrieve-pointer overrun, so
    the lazy §4.5 repair is never launched and overrun-stranded tasks
    are silently lost. *)
val debug_drop_retrieve_repair : bool ref

(** Every register array the queue allocated, for structural placement
    onto pipeline stages ({!Draconis_p4.Layout}). *)
val registers : t -> Register.t list
