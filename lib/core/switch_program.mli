(** The Draconis scheduler as a switch pipeline program.

    One program implements all four policies (§4.8, §5, §6): plain cFCFS
    over a single circular queue, resource-aware and locality-aware
    scheduling via task swapping, and priority scheduling over
    replicated per-level queues scanned through recirculation.

    PIFO-backed policies ({!Policy.backend} = [Pifo]: EDF, WFQ, aging
    priority) replace the circular queues with a {!Draconis_pifo.Pifo}
    rank store: admissions compute a rank on their traversal and pops
    become multi-traversal scans whose recirculations the instrument
    hooks surface ("pifo-probe" / "pifo-scan" / "pifo-claim" /
    "pifo-restart").

    The program is pure packet-in / packets-out logic against the
    {!Circular_queue} register state; it never blocks, loops, or holds
    state outside registers and per-packet metadata — the restrictions
    of the P4 target (§2.1.1). *)

open Draconis_sim


type t

(** [create ~engine ~policy ~queue_capacity ()] allocates the per-level
    queues ([queue_capacity] entries each) and program state.
    [instrument] defaults to {!Instrument.default}.  Runs
    {!Policy.validate} on [policy].  For PIFO-backed policies
    [queue_capacity] must be a multiple of the scan width (16, or the
    capacity itself when smaller) and at most 4096 — a pop recirculates
    once per rank-store row, so deep PIFOs are rejected loudly. *)
val create :
  engine:Engine.t ->
  ?instrument:Instrument.t ->
  policy:Policy.t ->
  queue_capacity:int ->
  unit ->
  t

(** The pipeline program to install via {!Draconis_p4.Pipeline.attach}
    with [wrap = fun m -> Switch_packet.Wire m]. *)
val program :
  t -> (Draconis_proto.Message.t, Switch_packet.t) Draconis_p4.Pipeline.program

val policy : t -> Policy.t

(** [queue t level] exposes a level's queue for tests and invariant
    checks.
    @raise Invalid_argument on an out-of-range level or when the policy
    deploys the PIFO backend. *)
val queue : t -> int -> Circular_queue.t

(** The rank store, when the policy deploys the PIFO backend. *)
val pifo : t -> Draconis_pifo.Pifo.t option

(** Total tasks currently held across all levels (control-plane view). *)
val total_occupancy : t -> int

(** Every register the program allocated across all queues, for
    structural stage placement ({!Draconis_p4.Layout}). *)
val registers : t -> Draconis_p4.Register.t list

(** Counters (control-plane view). *)
val assignments : t -> int

val noops : t -> int
val rejected_tasks : t -> int
val swaps : t -> int
val resubmissions : t -> int
val repairs_launched : t -> int
