(** A complete simulated Draconis deployment (paper Fig. 1).

    Assembles the discrete-event engine, the message fabric, the
    programmable-switch pipeline running the {!Switch_program}, the
    worker nodes with their pull-model executors, and the clients —
    wired to a shared {!Metrics} instance.

    Host-id layout: workers occupy hosts [0 .. workers-1]; clients
    occupy [workers .. workers+clients-1]. *)

open Draconis_sim
open Draconis_net
open Draconis_p4

(** Faults a {e sharded} cluster can express: static time windows,
    evaluated as pure functions of (simulated time, endpoint) so every
    logical process agrees without runtime mutation of shared state.
    Intervals are half-open [\[start, stop)].  Overlapping loss windows
    (and the fabric config's base loss) compose by max probability;
    overlapping straggler windows by max factor. *)
type static_faults = {
  loss_windows : (Time.t * Time.t * float) array;
      (** (start, stop, drop probability) *)
  cut_windows : (Time.t * Time.t * int list) array;
      (** (start, stop, hosts cut off) *)
  slow_windows : (Time.t * Time.t * int * float) array;
      (** (start, stop, worker node, slowdown factor >= 1.0) *)
}

val no_faults : static_faults

type config = {
  seed : int;
  workers : int;
  executors_per_worker : int;
  clients : int;
  racks : int;
  policy_of : Topology.t -> Policy.t;
      (** built against the cluster topology so locality policies can
          reference it *)
  queue_capacity : int;
  fabric_config : Fabric.config;
  pipeline_config : Pipeline.config;
  noop_retry : Time.t;
  rsrc_of_node : int -> int;  (** executor resource bitmap per node *)
  client_timeout : Time.t option;
  shards : int option;
      (** [Some n]: build on [n] logical processes — LP 0 holds the
          entire switch pipeline, hosts split into rack-aligned LP
          groups ({!Draconis_net.Topology.partition}) — with all
          entity-to-entity traffic stamped through the sharded
          {!Draconis_net.Fabric.router}.  Outcomes are bit-identical for
          every valid [n].  [None]: the classic single-engine cluster. *)
  static_faults : static_faults;
      (** sharded mode only; {!create} rejects a non-empty value with
          [shards = None] (the classic cluster takes faults from the
          runtime {!Draconis_fault.Injector} instead) *)
}

(** The paper's testbed shape: 10 workers x 16 executors, 2 clients,
    1 rack, FCFS, 164K-entry queue, calibrated fabric/pipeline, 4 us
    no-op retry, all resources on every node, no client timeout,
    unsharded, no static faults. *)
val default_config : config

type t

(** @raise Invalid_argument on a config with no workers or clients, more
    shards than [1 + workers + clients] (the switch LP plus one LP per
    host — the cap on useful LP groups for the topology), static faults
    without [shards], or an out-of-range fault window. *)
val create : config -> t

(** [start t] launches all executors (staggered within ~1 us). *)
val start : t -> unit

(** [run t ~until] advances the simulation to [until].  On a sharded
    cluster this drives {!Draconis_sim.Sync.run}; [executor] fans each
    barrier window's per-LP thunks out (e.g. over a {e work-stealing
    team}), defaulting to inline execution — the bit-deterministic
    reference that every executor must reproduce.  [executor] is
    ignored on an unsharded cluster. *)
val run : ?executor:Sync.executor -> t -> until:Time.t -> unit

(** [run_until_drained t ~deadline] keeps running until no client has
    outstanding tasks or the deadline passes; returns [true] if
    drained. *)
val run_until_drained : ?executor:Sync.executor -> t -> deadline:Time.t -> bool

(** The (only) engine of an unsharded cluster; the switch LP's engine of
    a sharded one. *)
val engine : t -> Engine.t

(** [Some] iff the cluster is sharded — exposes windows/lookahead/LPs to
    harness layers that drive or report on the barrier protocol. *)
val sync : t -> Sync.t option

(** Events executed so far, summed across every LP engine when sharded. *)
val events : t -> int

val fabric : t -> Draconis_proto.Message.t Fabric.t
val pipeline : t -> (Draconis_proto.Message.t, Switch_packet.t) Pipeline.t
val program : t -> Switch_program.t
val topology : t -> Topology.t
val metrics : t -> Metrics.t
val worker : t -> int -> Worker.t
val client : t -> int -> Client.t
val clients : t -> Client.t array
val workers : t -> Worker.t array
val total_executors : t -> int

(** Executors currently running a task — an observability probe source
    (utilization = busy / total). *)
val busy_executors : t -> int

(** Total tasks still outstanding across all clients. *)
val outstanding : t -> int

(** [fail_over_switch t] models the paper's fault story (sec 3.3): the
    switch dies and a standby takes over with a {e fresh} scheduling
    pipeline — every queued task is lost and must be recovered by client
    timeouts.  Returns the number of tasks that were queued (and lost)
    at the moment of fail-over. *)
val fail_over_switch : t -> int

(** {2 Fault injection} — the hooks the fault injector
    ({!Draconis_fault.Injector}) arms against a cluster. *)

(** [crash_worker t i] crashes every executor on worker [i]; its
    in-flight tasks vanish and are recovered by client timeouts. *)
val crash_worker : t -> int -> unit

(** [restart_worker t i] revives worker [i]'s executors (staggered like
    {!start}). *)
val restart_worker : t -> int -> unit

(** [set_node_slowdown t i f] applies straggler degradation [f] (>= 1.0,
    1.0 = full speed) to every executor on worker [i]. *)
val set_node_slowdown : t -> int -> float -> unit
