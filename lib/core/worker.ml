open Draconis_sim
open Draconis_proto
open Draconis_net

type t = { node : int; engine : Engine.t; executors : Executor.t array }

let create ~node ~executors ~fabric ~make_config () =
  if executors < 1 then invalid_arg "Worker.create: need at least one executor";
  let t =
    {
      node;
      engine = Fabric.engine fabric;
      executors =
        Array.init executors (fun port ->
            Executor.create ~config:(make_config ~port) ~fabric ());
    }
  in
  Fabric.register fabric (Addr.Host node) (fun env ->
      match env.Fabric.payload with
      | Message.Task_assignment { port; _ } as msg
      | (Message.Noop_assignment { port } as msg)
      | (Message.Param_data { port; _ } as msg) ->
        if port >= 0 && port < Array.length t.executors then
          Executor.deliver t.executors.(port) msg
      | Message.Job_submission _ | Message.Job_ack _ | Message.Queue_full _
      | Message.Task_request _ | Message.Task_completion _ | Message.Param_fetch _ ->
        ());
  t

let start t ~stagger =
  Array.iteri (fun i exec -> Executor.start ~after:(i * stagger) exec) t.executors

let stop t = Array.iter Executor.stop t.executors

let crash t = Array.iter Executor.crash t.executors

let restart t ~stagger =
  Array.iteri
    (fun i exec ->
      if i = 0 then Executor.restart exec
      else
        ignore
          (Engine.schedule t.engine ~after:(i * stagger) (fun () ->
               Executor.restart exec)))
    t.executors

let crashed t = Array.for_all Executor.stopped t.executors
let set_slowdown t factor = Array.iter (fun e -> Executor.set_slowdown e factor) t.executors
let node t = t.node

let executor t i =
  if i < 0 || i >= Array.length t.executors then invalid_arg "Worker.executor: bad index";
  t.executors.(i)

let executor_count t = Array.length t.executors
let iter_executors t f = Array.iter f t.executors

let set_on_task_start t f =
  Array.iter (fun exec -> Executor.set_on_task_start exec f) t.executors

let tasks_executed t =
  Array.fold_left (fun acc exec -> acc + Executor.tasks_executed exec) 0 t.executors

let busy_time t =
  Array.fold_left (fun acc exec -> acc + Executor.busy_time exec) 0 t.executors
