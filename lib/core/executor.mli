(** Pull-model executor (paper §3.1, §4.6).

    One executor models one logical core of a worker node.  It requests
    a task from the switch only when free, runs the assigned task for
    its modeled service time, then sends the completion to the client
    {e via the scheduler} with the next task request piggybacked.  A
    no-op assignment makes it retry after [noop_retry] — the executor is
    idle while pulling, which is the CPU-efficiency trade-off the paper
    accepts to eliminate node-level blocking. *)

open Draconis_sim
open Draconis_net
open Draconis_proto

type config = {
  node : int;  (** worker node id *)
  port : int;  (** executor index within the node *)
  rsrc : int;  (** EXEC_RSRC resource bitmap *)
  noop_retry : Time.t;  (** delay before re-requesting after a no-op *)
  fn_model : Fn_model.t;
  scheduler : Addr.t;
      (** where to pull from: the switch for Draconis, a server host for
          the centralized-server baselines *)
  watchdog : Time.t option;
      (** re-send the pull request if no reply arrives within this
          window; recovers executors whose request or assignment packet
          was lost.  [None] disables (schedulers that park requests
          should keep it off or deduplicate). *)
}

type t

(** [create ~config ~fabric ()] builds an executor for node
    [config.node] (fabric address [Host node]).  It does not register a
    fabric handler — the {!Worker} owns the node's handler and routes
    assignments by port. *)
val create : config:config -> fabric:Message.t Fabric.t -> unit -> t

(** [start ?after t] sends the initial task request, optionally delayed
    to stagger executor start-up. *)
val start : ?after:Time.t -> t -> unit

(** [deliver t msg] hands the executor a message routed to its port. *)
val deliver : t -> Message.t -> unit

(** [set_on_task_start t f] installs the measurement hook called when a
    task begins execution. *)
val set_on_task_start : t -> (Task.t -> node:int -> unit) -> unit

(** [stop t] stops the request loop (no further pulls). *)
val stop : t -> unit

(** {2 Fault injection} *)

(** [crash t] kills the executor: the request loop stops, any task in
    flight vanishes without a completion (it is not counted as
    executed), and incoming messages are dropped until {!restart}.
    Emits a {!Draconis_sim.Trace} [Host] record. *)
val crash : t -> unit

(** [restart t] revives a stopped or crashed executor: it immediately
    pulls for work again.  No-op if the executor is running. *)
val restart : t -> unit

(** [set_slowdown t f] makes every subsequently started task take [f]
    times its modeled service time — straggler degradation.  [1.0]
    restores full speed; a task already running keeps the factor it
    started with.
    @raise Invalid_argument if [f < 1.0]. *)
val set_slowdown : t -> float -> unit

val slowdown : t -> float

(** True after {!stop} or {!crash}, until {!restart}. *)
val stopped : t -> bool

val config : t -> config
val busy : t -> bool
val tasks_executed : t -> int

(** Cumulative time spent executing tasks (ns). *)
val busy_time : t -> Time.t
