(** Milestone forwarding from the core data path into the ambient
    {!Draconis_obs.Trace_ctx}.

    Components call these unconditionally at the causal milestones of a
    task's life; with no context installed (baselines, unobserved runs)
    each call is one domain-local read and a branch, mirroring the
    {!Draconis_obs.Recorder} ambient contract.  Keys derive from
    {!Draconis_proto.Task.id}, so the trace context is a side table —
    nothing rides on the wire and the switch register layout is
    untouched. *)

open Draconis_sim
module Obs = Draconis_obs

val key : Draconis_proto.Task.id -> Obs.Trace_ctx.key

val submit : Draconis_proto.Task.id -> at:Time.t -> unit
val sent : Draconis_proto.Task.id -> at:Time.t -> unit
val arrive : Draconis_proto.Task.id -> at:Time.t -> unit
val spin : Draconis_proto.Task.id -> at:Time.t -> unit
val enqueue : Draconis_proto.Task.id -> at:Time.t -> level:int -> unit
val reject : Draconis_proto.Task.id -> at:Time.t -> unit
val dequeue : Draconis_proto.Task.id -> at:Time.t -> unit
val assign : Draconis_proto.Task.id -> at:Time.t -> unit
val exec_start : Draconis_proto.Task.id -> at:Time.t -> unit
val exec_done : Draconis_proto.Task.id -> at:Time.t -> unit
val complete : Draconis_proto.Task.id -> at:Time.t -> unit
val flag_swap : Draconis_proto.Task.id -> unit
val flag_resubmit : Draconis_proto.Task.id -> unit
val repair_window : level:int -> unit
