open Draconis_p4

type t = {
  name : string;
  capacity : int;
  wrap : int;  (* pointer modulus: largest multiple of capacity <= 2^32 *)
  add_ptr : Register.t;
  retrieve_ptr : Register.t;
  add_repair_flag : Register.t;
  retrieve_repair_flag : Register.t;
  words : Register.t array;  (* one array per entry word *)
  stamps : Register.t;  (* write-index of the occupying task *)
}

(* The stamp value marking a free slot.  On hardware this is a separate
   valid bit; here we use the (unreachable) wrap modulus itself. *)
let free_stamp t = t.wrap

let max_capacity = 1 lsl 28

let create ~name ~capacity () =
  if capacity < 1 then invalid_arg "Circular_queue.create: capacity must be >= 1";
  if capacity > max_capacity then
    invalid_arg "Circular_queue.create: capacity too large for 32-bit pointers";
  let wrap = (1 lsl 32) / capacity * capacity in
  let reg suffix size = Register.create ~name:(name ^ "." ^ suffix) ~size () in
  let stamps = reg "stamp" capacity in
  let t =
    {
      name;
      capacity;
      wrap;
      add_ptr = reg "add_ptr" 1;
      retrieve_ptr = reg "retrieve_ptr" 1;
      add_repair_flag = reg "add_repair_flag" 1;
      retrieve_repair_flag = reg "retrieve_repair_flag" 1;
      words = Array.init Entry.word_count (fun i -> reg (Printf.sprintf "word%d" i) capacity);
      stamps;
    }
  in
  (* Stamps are initialised to the free sentinel from the control plane,
     as the switch CPU would do before enabling the pipeline. *)
  for i = 0 to capacity - 1 do
    Register.poke stamps i (free_stamp t)
  done;
  t

let capacity t = t.capacity
let name t = t.name
let wrap_modulus t = t.wrap

(* -- hidden correctness-check kill switches -------------------------------- *)

(* Each ref disables one of the checks that make the optimistic pointer
   protocol safe.  They exist solely so the fuzz harness (lib/fuzz) can
   prove its oracle detects the class of bug each check prevents; see
   Draconis_fuzz.Exec.  Nothing else may set them.  Both default to
   false, where the extra branch is free on the hot path. *)
let debug_skip_stamp_check = ref false
let debug_drop_retrieve_repair = ref false

(* -- wrap-aware pointer arithmetic ---------------------------------------- *)

let next_index t p = if p + 1 >= t.wrap then 0 else p + 1
let distance t ~ahead ~behind = (ahead - behind + t.wrap) mod t.wrap

(* Pointers never legitimately drift more than a few capacities apart, so
   any distance beyond half the wrap range means "actually behind". *)
let is_ahead t a b =
  let d = distance t ~ahead:a ~behind:b in
  d > 0 && d <= t.wrap / 2

type enqueue_outcome =
  | Enqueued of { index : int; retrieve_repair : int option }
  | Rejected of { add_repair : int option; retrieve_repair : int option }

let read_and_advance t reg ctx =
  Register.read_modify_write reg ctx 0 (fun v -> next_index t v)

let enqueue t ctx entry =
  (* (1) pointer stage: optimistic read-and-increment (§4.2). *)
  let a = read_and_advance t t.add_ptr ctx in
  let r = Register.read t.retrieve_ptr ctx 0 in
  let occupancy = distance t ~ahead:a ~behind:r in
  (* [occupancy] beyond half the range means the retrieve pointer has
     overrun (queue empty + polled); that is never "full". *)
  let pointer_full = occupancy >= t.capacity && occupancy <= t.wrap / 2 in
  (* Lazy retrieve-pointer repair: r overran past the slot we would
     fill, so a repair must point it back (§4.5). *)
  let overrun = is_ahead t r a && not !debug_drop_retrieve_repair in
  (* (3) flag stage: one RMW per flag; each condition uses only
     pointer-stage metadata and the flag's own previous value, as the
     per-stage ALUs of the hardware require.  The retrieve flag word
     doubles as the in-flight repair target ([0] = clear,
     [target + 1] otherwise): while the repair is in flight the
     retrieve pointer is inflated and [occupancy] above is only a
     lower bound — trusting it let a store overwrite a live slot whose
     write-index maps to the same physical slot (found by lib/fuzz).
     The target in the flag word is the true retrieve position, so the
     true occupancy stays computable in this stage. *)
  let old_retrieve_flag =
    Register.read_modify_write t.retrieve_repair_flag ctx 0 (fun f ->
        if overrun && f = 0 then a + 1 else f)
  in
  let retrieve_pending = old_retrieve_flag <> 0 in
  let retrieve_launch = overrun && not retrieve_pending in
  let full =
    if retrieve_pending then begin
      (* No "distance beyond wrap/2 means behind" escape here: when the
         in-flight repair was launched by a rejected packet its target
         is a hole, and an add-pointer repair can then reset [a] below
         the target — reading that as "empty" let two stores alias one
         slot (found by lib/fuzz).  Rejecting is safe: the lazy repair
         rounds converge once the window closes. *)
      let d = distance t ~ahead:a ~behind:(old_retrieve_flag - 1) in
      d >= t.capacity
    end
    else pointer_full
  in
  let old_add_flag =
    Register.read_modify_write t.add_repair_flag ctx 0 (fun f ->
        if full && f = 0 then 1 else f)
  in
  if full || old_add_flag = 1 then
    (* [retrieve_repair] is non-None only in the rare case where this
       packet detected an overrun but an add repair is already in
       flight: the flag was set above, so the repair must still launch
       (targeting [a]: the queue is empty when overrun, and a further
       overrun round re-repairs against the post-repair add pointer). *)
    Rejected
      {
        add_repair = (if full && old_add_flag = 0 then Some a else None);
        retrieve_repair = (if retrieve_launch then Some a else None);
      }
  else begin
    (* INT: stamp the occupancy this admission decision was made
       against.  Every input is already in hand from the pointer and
       flag stages — the corrected distance during a retrieve-repair
       window, zero on a fresh overrun — so the stamp costs no extra
       register access. *)
    if Draconis_obs.Int_telemetry.enabled () then
      Draconis_obs.Int_telemetry.note_occupancy
        (if retrieve_pending then distance t ~ahead:a ~behind:(old_retrieve_flag - 1)
         else if overrun then 0
         else occupancy);
    (* (5) egress queue access: write the entry words and stamp. *)
    let slot = a mod t.capacity in
    let image = Entry.to_words entry in
    Array.iteri (fun i word -> Register.write t.words.(i) ctx slot word) image;
    Register.write t.stamps ctx slot a;
    Enqueued
      { index = a; retrieve_repair = (if retrieve_launch then Some a else None) }
  end

type dequeue_outcome =
  | Dequeued of { index : int; entry : Entry.t }
  | Empty
  | Repair_pending

let dequeue t ctx =
  (* (1) pointer stage. *)
  let r = read_and_advance t t.retrieve_ptr ctx in
  (* (3) flag stage: a pending retrieve repair means r is unreliable;
     answer with a no-op and let the repair land (§4.7.2). *)
  let flag = Register.read t.retrieve_repair_flag ctx 0 in
  if flag <> 0 then Repair_pending
  else begin
    (* (5) egress: the stamp check is the task-validity test of §4.5 —
       it fails when the queue is empty (the optimistic increment was a
       mistake, to be lazily repaired) and in pointer-repair windows. *)
    let slot = r mod t.capacity in
    let stamp = Register.read_modify_write t.stamps ctx slot (fun _ -> free_stamp t) in
    if stamp <> r && not !debug_skip_stamp_check then Empty
    else begin
      let image =
        Array.init Entry.word_count (fun i -> Register.read t.words.(i) ctx slot)
      in
      Dequeued { index = r; entry = Entry.of_words image }
    end
  end

let apply_repair_add t ctx ~target =
  Register.write t.add_ptr ctx 0 (target mod t.wrap);
  Register.write t.add_repair_flag ctx 0 0

let apply_repair_retrieve t ctx ~target =
  Register.write t.retrieve_ptr ctx 0 (target mod t.wrap);
  Register.write t.retrieve_repair_flag ctx 0 0

let read_pointers t ctx =
  let a = Register.read t.add_ptr ctx 0 in
  let r = Register.read t.retrieve_ptr ctx 0 in
  (a, r)

type swap_outcome = Swapped of Entry.t | Slot_invalid

let swap t ctx ~index entry =
  let index = index mod t.wrap in
  let slot = index mod t.capacity in
  (* The stamp RMW both validates the slot and claims it for the
     incoming task in a single access. *)
  let old_stamp = Register.read_modify_write t.stamps ctx slot (fun _ -> index) in
  if old_stamp <> index then begin
    (* Not a pending task: restore the stamp we clobbered.  On hardware
       the stamp RMW would be conditional on the predicate computed in
       an earlier stage; the model performs the restore through the
       control plane to keep the data-path access single. *)
    Register.poke t.stamps slot old_stamp;
    Slot_invalid
  end
  else begin
    let image = Entry.to_words entry in
    let old_image =
      Array.mapi
        (fun i word -> Register.read_modify_write t.words.(i) ctx slot (fun _ -> word))
        image
    in
    Swapped (Entry.of_words old_image)
  end

let occupancy t =
  let d =
    distance t ~ahead:(Register.peek t.add_ptr 0) ~behind:(Register.peek t.retrieve_ptr 0)
  in
  if d > t.wrap / 2 then 0 else d

let peek_add_ptr t = Register.peek t.add_ptr 0
let peek_retrieve_ptr t = Register.peek t.retrieve_ptr 0
let peek_add_repair_flag t = Register.peek t.add_repair_flag 0 = 1
let peek_retrieve_repair_flag t = Register.peek t.retrieve_repair_flag 0 <> 0

let peek_entry t ~index =
  let index = index mod t.wrap in
  let slot = index mod t.capacity in
  if Register.peek t.stamps slot <> index then None
  else begin
    let image = Array.init Entry.word_count (fun i -> Register.peek t.words.(i) slot) in
    Some (Entry.of_words image)
  end

let register_bits t =
  Register.bits t.add_ptr + Register.bits t.retrieve_ptr
  + Register.bits t.add_repair_flag
  + Register.bits t.retrieve_repair_flag
  + Register.bits t.stamps
  + Array.fold_left (fun acc reg -> acc + Register.bits reg) 0 t.words

let registers t =
  t.add_ptr :: t.retrieve_ptr :: t.add_repair_flag :: t.retrieve_repair_flag
  :: t.stamps :: Array.to_list t.words

let unsafe_set_pointers_for_test t ~add ~retrieve =
  Register.poke t.add_ptr 0 (((add mod t.wrap) + t.wrap) mod t.wrap);
  Register.poke t.retrieve_ptr 0 (((retrieve mod t.wrap) + t.wrap) mod t.wrap)
