(** Scheduling policies supported by the Draconis switch program.

    - {b FCFS} (§4.8): the plain centralized single-queue policy —
      optimal for light-tailed microsecond workloads.
    - {b Resource-aware} (§5.2): tasks carry a required-resource bitmap
      and only run on executors advertising those resources; realized
      with task swapping.
    - {b Locality-aware} (§5.3): tasks prefer their data-local nodes,
      then the local rack, then anywhere, driven by a per-task skip
      counter with [rack_start_limit] / [global_start_limit] thresholds.
    - {b Priority} (§6.1): one replicated queue per priority level;
      task requests scan levels from highest (1) to lowest.

    The PIFO-backed disciplines (see {!Pifo}) order one logical queue by
    a computed rank instead of deploying circular queues:

    - {b EDF}: rank is the absolute deadline ([now + relative deadline],
      tasks without a {!Task.Deadline} property use [default_deadline]).
    - {b WFQ}: virtual-clock weighted fair queueing across tenants; each
      admission advances its tenant's virtual finish time by
      [quantum / weights.(tenant)] and ranks the task by it.
    - {b Aging priority}: strict priority made starvation-free — rank is
      [now + (level - 1) * quantum], so a lower-priority task overtakes
      higher-priority tasks submitted more than [quantum] later. *)

open Draconis_net
open Draconis_proto

type t =
  | Fcfs
  | Resource_aware of { max_swaps : int }
  | Locality_aware of {
      rack_start_limit : int;
      global_start_limit : int;
      topology : Topology.t;
    }
  | Priority of { levels : int }
  | Edf of { default_deadline : int }  (** default relative deadline, ns *)
  | Wfq of { quantum : int; weights : int array }
      (** [quantum] ns of virtual service per admission; tenant ids
          index [weights] (out-of-range ids clamp to the last tenant) *)
  | Aging_priority of { levels : int; quantum : int }
      (** one priority level costs [quantum] ns of queue age *)

(** Which queue substrate realizes the policy on the switch. *)
type backend = Circular | Pifo

val backend : t -> backend

(** [validate t] rejects malformed parameters with [Invalid_argument]
    (fail-loud: callers building policies from user input run this). *)
val validate : t -> unit

(** [of_string s] parses the [bench --policy] / [DRACONIS_POLICY]
    syntax: [fcfs], [priority:<levels>], [edf:<deadline_us>],
    [wfq:<quantum_us>:<w1,w2,...>], [aging:<levels>:<quantum_us>]
    (durations in microseconds).  Unknown disciplines or malformed
    parameters raise [Invalid_argument] — never a silent default. *)
val of_string : string -> t

val pp : Format.formatter -> t -> unit

(** Number of switch queues the policy deploys (1 except [Priority]). *)
val queue_count : t -> int

(** [queue_of_task p task] is the queue a submitted task belongs to, in
    [\[0, queue_count p)].  Priorities outside [\[1, levels\]] are
    clamped to the lowest level. *)
val queue_of_task : t -> Task.t -> int

(** [satisfies p ~entry ~info] decides whether the policy allows
    scheduling [entry] on the requesting executor right now.  For
    locality this consults the entry's (already bumped) skip counter. *)
val satisfies : t -> entry:Entry.t -> info:Message.executor_info -> bool

(** [swap_bound p ~queue_occupancy] is how many times one task request
    may swap before giving up and re-inserting (§5.1: "a bounded number
    of times ... or until it reaches the end of the queue"). *)
val swap_bound : t -> queue_occupancy:int -> int

(** [uses_swapping p] is true for the constraint-based policies. *)
val uses_swapping : t -> bool
