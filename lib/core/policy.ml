open Draconis_net
open Draconis_proto

type t =
  | Fcfs
  | Resource_aware of { max_swaps : int }
  | Locality_aware of {
      rack_start_limit : int;
      global_start_limit : int;
      topology : Topology.t;
    }
  | Priority of { levels : int }
  | Edf of { default_deadline : int }
  | Wfq of { quantum : int; weights : int array }
  | Aging_priority of { levels : int; quantum : int }

type backend = Circular | Pifo

let backend = function
  | Fcfs | Resource_aware _ | Locality_aware _ | Priority _ -> Circular
  | Edf _ | Wfq _ | Aging_priority _ -> Pifo

let validate = function
  | Fcfs -> ()
  | Resource_aware { max_swaps } ->
    if max_swaps < 0 then invalid_arg "Policy: max_swaps must be >= 0"
  | Locality_aware { rack_start_limit; global_start_limit; _ } ->
    if rack_start_limit < 0 || global_start_limit < rack_start_limit then
      invalid_arg "Policy: need 0 <= rack_start_limit <= global_start_limit"
  | Priority { levels } ->
    if levels < 1 then invalid_arg "Policy: priority levels must be >= 1"
  | Edf { default_deadline } ->
    if default_deadline <= 0 then
      invalid_arg "Policy: edf default deadline must be positive"
  | Wfq { quantum; weights } ->
    if quantum <= 0 then invalid_arg "Policy: wfq quantum must be positive";
    if Array.length weights = 0 then invalid_arg "Policy: wfq needs >= 1 tenant";
    Array.iter
      (fun w -> if w < 1 then invalid_arg "Policy: wfq weights must be >= 1")
      weights
  | Aging_priority { levels; quantum } ->
    if levels < 1 then invalid_arg "Policy: aging levels must be >= 1";
    if quantum <= 0 then invalid_arg "Policy: aging quantum must be positive"

(* Fail-loud parser behind [bench --policy] / DRACONIS_POLICY: anything
   other than a known discipline with well-formed parameters raises. *)
let of_string s =
  let fail detail =
    invalid_arg
      (Printf.sprintf
         "Policy.of_string: %s (expected fcfs | priority:<levels> | \
          edf:<deadline_us> | wfq:<quantum_us>:<w1,w2,...> | \
          aging:<levels>:<quantum_us>; got %S)"
         detail s)
  in
  let int_field name v =
    match int_of_string_opt v with
    | Some n -> n
    | None -> fail (Printf.sprintf "%s %S is not an integer" name v)
  in
  let us_to_ns n = n * 1_000 in
  let t =
    match String.split_on_char ':' (String.trim s) with
    | [ "fcfs" ] -> Fcfs
    | [ "priority"; levels ] -> Priority { levels = int_field "levels" levels }
    | [ "edf"; deadline ] ->
      Edf { default_deadline = us_to_ns (int_field "deadline" deadline) }
    | [ "wfq"; quantum; weights ] ->
      let weights =
        match String.split_on_char ',' weights with
        | [ "" ] -> fail "wfq weight list is empty"
        | parts -> Array.of_list (List.map (int_field "weight") parts)
      in
      Wfq { quantum = us_to_ns (int_field "quantum" quantum); weights }
    | [ "aging"; levels; quantum ] ->
      Aging_priority
        {
          levels = int_field "levels" levels;
          quantum = us_to_ns (int_field "quantum" quantum);
        }
    | (("resource" | "locality") as name) :: _ ->
      fail (name ^ " policies need a topology; select them in code")
    | _ -> fail "unknown discipline"
  in
  (try validate t
   with Invalid_argument detail -> fail detail);
  t

let pp fmt = function
  | Fcfs -> Format.pp_print_string fmt "fcfs"
  | Resource_aware { max_swaps } -> Format.fprintf fmt "resource-aware(max_swaps=%d)" max_swaps
  | Locality_aware { rack_start_limit; global_start_limit; _ } ->
    Format.fprintf fmt "locality-aware(rack=%d,global=%d)" rack_start_limit
      global_start_limit
  | Priority { levels } -> Format.fprintf fmt "priority(levels=%d)" levels
  | Edf { default_deadline } -> Format.fprintf fmt "edf(deadline=%dns)" default_deadline
  | Wfq { quantum; weights } ->
    Format.fprintf fmt "wfq(quantum=%dns,weights=[%s])" quantum
      (String.concat ";" (Array.to_list (Array.map string_of_int weights)))
  | Aging_priority { levels; quantum } ->
    Format.fprintf fmt "aging-priority(levels=%d,quantum=%dns)" levels quantum

let queue_count = function
  | Fcfs | Resource_aware _ | Locality_aware _ -> 1
  | Priority { levels } -> levels
  (* PIFO-backed disciplines order one logical queue by rank. *)
  | Edf _ | Wfq _ | Aging_priority _ -> 1

let queue_of_task t (task : Task.t) =
  match t with
  | Fcfs | Resource_aware _ | Locality_aware _ | Edf _ | Wfq _ | Aging_priority _ -> 0
  | Priority { levels } ->
    let p = Task.priority_level task in
    if p < 1 || p > levels then levels - 1 else p - 1

let satisfies t ~entry ~info =
  let task = entry.Entry.task in
  match t with
  | Fcfs | Priority _ | Edf _ | Wfq _ | Aging_priority _ -> true
  | Resource_aware _ ->
    let required = Task.required_resources task in
    required land info.Message.exec_rsrc = required
  | Locality_aware { rack_start_limit; global_start_limit; topology } ->
    let locals = Task.locality_nodes task in
    let node = info.Message.exec_node in
    if locals = [] || List.mem node locals then true
    else if entry.Entry.skip > global_start_limit then true
    else if entry.Entry.skip > rack_start_limit then
      List.exists (fun local -> Topology.same_rack topology node local) locals
    else false

let swap_bound t ~queue_occupancy =
  match t with
  | Fcfs | Priority _ | Edf _ | Wfq _ | Aging_priority _ -> 0
  | Resource_aware { max_swaps } -> min max_swaps queue_occupancy
  | Locality_aware { global_start_limit; _ } ->
    (* §5.3: recirculation per request is bounded by the global limit. *)
    min (global_start_limit + 1) queue_occupancy

let uses_swapping = function
  | Fcfs | Priority _ | Edf _ | Wfq _ | Aging_priority _ -> false
  | Resource_aware _ | Locality_aware _ -> true
