open Draconis_p4
module Obs = Draconis_obs

let seq_bits = 20
let seq_limit = 1 lsl seq_bits
let mask32 = 0xFFFFFFFF

type t = {
  name : string;
  capacity : int;
  scan_width : int;
  cells_per_bank : int;
  word_count : int;
  max_rank : int;
  banks : Register.t array;  (* scan_width arrays of cells_per_bank 64-bit cells *)
  words : Register.t array;  (* word_count arrays of capacity 32-bit cells *)
  occ : Register.t;
  seq : Register.t;
  epoch : Register.t;
  mutable renumbers : int;
  mutable rank_clamps : int;
}

let create ~name ~capacity ~scan_width ~word_count ?(max_rank = mask32) () =
  if capacity <= 0 then invalid_arg "Pifo.create: capacity must be positive";
  if scan_width <= 0 then invalid_arg "Pifo.create: scan_width must be positive";
  if capacity mod scan_width <> 0 then
    invalid_arg "Pifo.create: capacity must be a multiple of scan_width";
  if capacity > seq_limit / 4 then
    invalid_arg "Pifo.create: capacity too large for the tie-break stamp width";
  if word_count <= 0 then invalid_arg "Pifo.create: word_count must be positive";
  if max_rank < 1 || max_rank > mask32 then
    invalid_arg "Pifo.create: max_rank must be in [1, 2^32-1]";
  let cells_per_bank = capacity / scan_width in
  {
    name;
    capacity;
    scan_width;
    cells_per_bank;
    word_count;
    max_rank;
    banks =
      Array.init scan_width (fun k ->
          (* 64-bit cells: rank and tie-break stamp move in one access
             (the Tofino paired register lane). *)
          Register.create
            ~name:(Printf.sprintf "%s.rank%d" name k)
            ~size:cells_per_bank ~cell_bits:64 ());
    words =
      Array.init word_count (fun j ->
          Register.create ~name:(Printf.sprintf "%s.word%d" name j) ~size:capacity ());
    occ = Register.create ~name:(name ^ ".occ") ~size:1 ();
    seq = Register.create ~name:(name ^ ".seq") ~size:1 ();
    epoch = Register.create ~name:(name ^ ".epoch") ~size:1 ();
    renumbers = 0;
    rank_clamps = 0;
  }

let name t = t.name
let capacity t = t.capacity
let scan_width t = t.scan_width
let cells_per_bank t = t.cells_per_bank
let word_count t = t.word_count
let max_rank t = t.max_rank
let probe_budget t = 2 * t.cells_per_bank

let registers t =
  Array.to_list t.banks @ Array.to_list t.words @ [ t.occ; t.seq; t.epoch ]

let slot_of ~cells_per_bank ~bank ~row = (bank * cells_per_bank) + row
let pack ~rank ~seq = ((rank lsl seq_bits) lor seq) + 1
let rank_of_packed packed = (packed - 1) lsr seq_bits
let seq_of_packed packed = (packed - 1) land (seq_limit - 1)

(* -- admission -------------------------------------------------------------- *)

type probe = { packed : int; payload : int array; row : int; attempts : int }

type admit_result =
  | Admitted of { slot : int; packed : int }
  | Probing of probe
  | Full

(* One probe row: a compare-free-and-stamp on one cell of each bank.
   Each bank is a distinct register array, so one traversal may touch
   all of them; banks after the first successful claim are predicated
   off (their stateful ALU does not fire — no access). *)
let probe_row t ctx ~row ~packed ~payload =
  let claimed = ref (-1) in
  let k = ref 0 in
  while !claimed < 0 && !k < t.scan_width do
    let old =
      Register.read_modify_write t.banks.(!k) ctx row (fun v ->
          if v = 0 then packed else v)
    in
    if old = 0 then claimed := !k;
    incr k
  done;
  if !claimed < 0 then begin
    if Obs.Int_telemetry.enabled () then Obs.Int_telemetry.note_probe Obs.Int_telemetry.Probe_miss;
    None
  end
  else begin
    (* INT: the claimed bank is a by-product of the probe loop itself —
       stamping it reuses the outcome, no extra access. *)
    if Obs.Int_telemetry.enabled () then begin
      Obs.Int_telemetry.note_bank !claimed;
      Obs.Int_telemetry.note_probe Obs.Int_telemetry.Probe_hit
    end;
    let slot = slot_of ~cells_per_bank:t.cells_per_bank ~bank:!claimed ~row in
    (* The payload rides later stages: one write per word array. *)
    Array.iteri (fun j w -> Register.write t.words.(j) ctx slot w) payload;
    Some slot
  end

let admit t ctx ~rank ~words =
  if Array.length words <> t.word_count then
    invalid_arg "Pifo.admit: wrong payload word count";
  Array.iter
    (fun w -> if w < 0 || w > mask32 then invalid_arg "Pifo.admit: word out of u32 range")
    words;
  let rank =
    if rank < 0 then 0
    else if rank > t.max_rank then begin
      t.rank_clamps <- t.rank_clamps + 1;
      t.max_rank
    end
    else rank
  in
  (* Occupancy gate: an atomic bounded increment.  Success guarantees a
     free cell exists somewhere, so a gated probe always lands. *)
  let occ_old =
    Register.read_modify_write t.occ ctx 0 (fun o ->
        if o < t.capacity then o + 1 else o)
  in
  if occ_old >= t.capacity then Full
  else begin
    (* INT: [occ_old] is the gate's own read — occupancy before this
       admission, in hand already. *)
    if Obs.Int_telemetry.enabled () then Obs.Int_telemetry.note_occupancy occ_old;
    let s = Register.read_and_increment t.seq ctx 0 in
    (* Defensive: renumbering keeps the counter far from the limit; if
       it ever saturates, stamps collide rather than wrap (a wrapped
       stamp would jump the FIFO order). *)
    let s = if s >= seq_limit then seq_limit - 1 else s in
    let packed = pack ~rank ~seq:s in
    let payload = Array.copy words in
    match probe_row t ctx ~row:0 ~packed ~payload with
    | Some slot -> Admitted { slot; packed }
    | None -> Probing { packed; payload; row = 1; attempts = 1 }
  end

let probe t ctx p =
  if p.attempts >= probe_budget t then begin
    (* Budget exhausted (possible only under sustained claim races):
       release the occupancy gate and reject. *)
    ignore
      (Register.read_modify_write t.occ ctx 0 (fun o -> if o > 0 then o - 1 else o));
    Full
  end
  else begin
    let row = p.row mod t.cells_per_bank in
    match probe_row t ctx ~row ~packed:p.packed ~payload:p.payload with
    | Some slot -> Admitted { slot; packed = p.packed }
    | None -> Probing { p with row = row + 1; attempts = p.attempts + 1 }
  end

(* -- pop -------------------------------------------------------------------- *)

type scan = { next_row : int; best_slot : int; best_packed : int; scan_epoch : int }
type candidate = { cand_slot : int; cand_packed : int; cand_epoch : int }

type scan_result =
  | Empty
  | Scanning of scan
  | Ready of candidate
  | Drained

let packed_of_candidate c = c.cand_packed

(* Read one row across all banks, folding the minimum into the carried
   best.  One access per bank register: legal in a single traversal. *)
let scan_row t ctx ~row ~best_slot ~best_packed =
  let best_slot = ref best_slot and best_packed = ref best_packed in
  for k = 0 to t.scan_width - 1 do
    let v = Register.read t.banks.(k) ctx row in
    if v <> 0 && (!best_packed = 0 || v < !best_packed) then begin
      best_packed := v;
      best_slot := slot_of ~cells_per_bank:t.cells_per_bank ~bank:k ~row
    end
  done;
  (!best_slot, !best_packed)

let finish_or_continue t ~next_row ~best_slot ~best_packed ~scan_epoch =
  if next_row >= t.cells_per_bank then
    if best_packed = 0 then Drained
    else Ready { cand_slot = best_slot; cand_packed = best_packed; cand_epoch = scan_epoch }
  else Scanning { next_row; best_slot; best_packed; scan_epoch }

let note_best_bank t best_slot =
  if best_slot >= 0 && Obs.Int_telemetry.enabled () then
    Obs.Int_telemetry.note_bank (best_slot / t.cells_per_bank)

let scan_start t ctx =
  let occ = Register.read t.occ ctx 0 in
  if Obs.Int_telemetry.enabled () then Obs.Int_telemetry.note_occupancy occ;
  if occ = 0 then Empty
  else begin
    let scan_epoch = Register.read t.epoch ctx 0 in
    let best_slot, best_packed = scan_row t ctx ~row:0 ~best_slot:(-1) ~best_packed:0 in
    note_best_bank t best_slot;
    finish_or_continue t ~next_row:1 ~best_slot ~best_packed ~scan_epoch
  end

let scan_step t ctx s =
  let best_slot, best_packed =
    scan_row t ctx ~row:s.next_row ~best_slot:s.best_slot ~best_packed:s.best_packed
  in
  note_best_bank t best_slot;
  finish_or_continue t ~next_row:(s.next_row + 1) ~best_slot ~best_packed
    ~scan_epoch:s.scan_epoch

type claim_result =
  | Claimed of { slot : int; packed : int; words : int array }
  | Lost

let claim t ctx c =
  let ep = Register.read t.epoch ctx 0 in
  if ep <> c.cand_epoch then begin
    if Obs.Int_telemetry.enabled () then
      Obs.Int_telemetry.note_probe Obs.Int_telemetry.Claim_lost;
    Lost
  end
  else begin
    let bank = c.cand_slot / t.cells_per_bank in
    let row = c.cand_slot mod t.cells_per_bank in
    if Obs.Int_telemetry.enabled () then Obs.Int_telemetry.note_bank bank;
    (* Compare-and-free: succeeds only if the cell still holds exactly
       the scanned stamp (another claimer or a renumber loses us). *)
    let old =
      Register.read_modify_write t.banks.(bank) ctx row (fun v ->
          if v = c.cand_packed then 0 else v)
    in
    if old <> c.cand_packed then begin
      if Obs.Int_telemetry.enabled () then
        Obs.Int_telemetry.note_probe Obs.Int_telemetry.Claim_lost;
      Lost
    end
    else begin
      if Obs.Int_telemetry.enabled () then
        Obs.Int_telemetry.note_probe Obs.Int_telemetry.Claim_won;
      ignore
        (Register.read_modify_write t.occ ctx 0 (fun o -> if o > 0 then o - 1 else o));
      let words =
        Array.init t.word_count (fun j -> Register.read t.words.(j) ctx c.cand_slot)
      in
      Claimed { slot = c.cand_slot; packed = c.cand_packed; words }
    end
  end

(* -- control plane ----------------------------------------------------------- *)

let occupancy t = Register.peek t.occ 0

(* Renumber while the counter still has [2 * capacity] headroom: at most
   [capacity] stamps can be consumed by packets already past the gate
   while the switch CPU runs. *)
let needs_renumber t = Register.peek t.seq 0 >= seq_limit - (2 * t.capacity)

let live_cells t =
  let acc = ref [] in
  for k = 0 to t.scan_width - 1 do
    for row = 0 to t.cells_per_bank - 1 do
      let v = Register.peek t.banks.(k) row in
      if v <> 0 then acc := (k, row, v) :: !acc
    done
  done;
  List.sort (fun (_, _, a) (_, _, b) -> compare a b) !acc

let renumber t =
  let live = live_cells t in
  List.iteri
    (fun i (bank, row, v) ->
      let rank = rank_of_packed v in
      Register.poke t.banks.(bank) row (pack ~rank ~seq:i))
    live;
  Register.poke t.seq 0 (List.length live);
  Register.poke t.epoch 0 (Register.peek t.epoch 0 + 1);
  t.renumbers <- t.renumbers + 1

let renumbers t = t.renumbers
let rank_clamps t = t.rank_clamps

let peek_slots t =
  List.map
    (fun (bank, row, v) ->
      ( slot_of ~cells_per_bank:t.cells_per_bank ~bank ~row,
        rank_of_packed v,
        seq_of_packed v ))
    (live_cells t)

let peek_payloads t =
  List.map
    (fun (bank, row, _) ->
      let slot = slot_of ~cells_per_bank:t.cells_per_bank ~bank ~row in
      Array.init t.word_count (fun j -> Register.peek t.words.(j) slot))
    (live_cells t)
