(** A push-in-first-out queue realized under the switch resource model.

    A PIFO (Sivaraman et al., "Programmable Packet Scheduling at Line
    Rate") admits entries with an arbitrary rank and always releases the
    minimum-rank entry; a single PIFO primitive expresses EDF, weighted
    fairness, and aging priority — disciplines Draconis hard-codes as
    separate queue arrangements.

    {2 Why a true PIFO is illegal on the modeled switch}

    The paper's §2.1.1 constraint — enforced here by {!Packet_ctx} —
    allows each register array to be operated on {e at most once per
    traversal}.  A real PIFO's pop must compare every stored rank and
    extract the minimum: with the rank store in one register array that
    is O(capacity) reads of the same array in one traversal, and even a
    sorted insert needs a read-scan followed by a shift — both flagrant
    violations ({!Packet_ctx.Access_violation} if attempted).

    {2 The workaround this module implements}

    The rank store is sharded into [scan_width] independent single-word
    register {e banks} (distinct arrays, so one traversal may legally
    touch one cell of each).  Each 64-bit bank cell packs
    [(rank << 20) | seq + 1] where [seq] is a FIFO tie-break stamp; [0]
    means free.

    - {b Admit} gates on an occupancy register, stamps a tie-break
      sequence number, then probes one {e row} (one cell per bank) per
      traversal, claiming the first free cell with an atomic
      compare-free-and-stamp; full rows recirculate the probe with an
      advanced row cursor.
    - {b Pop} is a multi-traversal scan: each traversal reads one row
      across all banks (one access per bank — legal) carrying the best
      candidate forward in packet metadata, followed by a {e separate}
      claim traversal that atomically frees the winning cell — it
      cannot ride the final scan traversal, which already accessed the
      winner's bank.
    - An {b epoch} register guards claims against control-plane
      renumbering; a stale or raced claim loses and the pop restarts.

    The price is recirculation: a pop costs [cells_per_bank + 1]
    traversals where a circular queue costs one.  Callers surface that
    cost through their recirculation instrumentation; it is the honest
    reason in-switch PIFOs trade capacity (small [cells_per_bank])
    against array budget (large [scan_width]).

    Payloads are opaque word images ([word_count] u32 words per entry)
    stored in per-word register arrays, exactly like the circular
    queue's entry store. *)

open Draconis_p4

type t

(** Bits of the FIFO tie-break stamp inside a packed cell. *)
val seq_bits : int

(** Exclusive upper bound of tie-break stamps ([2 ^ seq_bits]). *)
val seq_limit : int

(** [create ~name ~capacity ~scan_width ~word_count ?max_rank ()] builds
    a PIFO with [capacity] slots arranged as [scan_width] rank banks of
    [capacity / scan_width] cells.  [capacity] must be a positive
    multiple of [scan_width] and at most [seq_limit / 4] (so renumbering
    can always run before the stamp wraps).  Ranks are clamped to
    [\[0, max_rank\]] (default [2^32 - 1], the width of a switch rank
    field). *)
val create :
  name:string ->
  capacity:int ->
  scan_width:int ->
  word_count:int ->
  ?max_rank:int ->
  unit ->
  t

val name : t -> string
val capacity : t -> int
val scan_width : t -> int

(** Cells per rank bank = rows a full scan traverses. *)
val cells_per_bank : t -> int

val word_count : t -> int
val max_rank : t -> int

(** Probe traversals an admit may spend before giving up (two full
    passes over the rows). *)
val probe_budget : t -> int

(** Every register array the PIFO allocated, for {!Layout.place}. *)
val registers : t -> Register.t list

(** {2 Admission (one traversal per call)} *)

(** In-flight probe state carried across recirculations. *)
type probe

type admit_result =
  | Admitted of { slot : int; packed : int }
  | Probing of probe  (** row full; recirculate and call {!probe} *)
  | Full  (** occupancy gate rejected (or probe budget exhausted) *)

(** [admit t ctx ~rank ~words] is the first admission traversal:
    occupancy gate, tie-break stamp, probe of the first row.  [words]
    must be [word_count] u32 values.  Clamps [rank] into
    [\[0, max_rank\]]. *)
val admit : t -> Packet_ctx.t -> rank:int -> words:int array -> admit_result

(** [probe t ctx p] continues an admission on its next row (fresh
    traversal).  Returns [Full] — after undoing the occupancy gate —
    once the probe budget is exhausted. *)
val probe : t -> Packet_ctx.t -> probe -> admit_result

(** {2 Pop (scan traversals, then a claim traversal)} *)

(** Scan state carried across recirculations. *)
type scan

(** A scan's winner, to be claimed in a separate traversal. *)
type candidate

type scan_result =
  | Empty  (** occupancy is zero: nothing to pop *)
  | Scanning of scan  (** recirculate and call {!scan_step} *)
  | Ready of candidate  (** scan finished; recirculate and {!claim} *)
  | Drained
      (** all rows scanned, nothing claimable (admits in flight);
          the pop should give up or restart *)

(** [scan_start t ctx] begins a pop: occupancy + epoch read and the
    first row scan. *)
val scan_start : t -> Packet_ctx.t -> scan_result

(** [scan_step t ctx s] scans the next row (fresh traversal). *)
val scan_step : t -> Packet_ctx.t -> scan -> scan_result

type claim_result =
  | Claimed of { slot : int; packed : int; words : int array }
  | Lost  (** raced by another claim or invalidated by renumbering *)

(** [claim t ctx c] atomically frees the winning cell if it still holds
    the scanned stamp and the epoch is unchanged, releasing the payload
    words.  [Lost] callers restart the pop (bounding their restarts). *)
val claim : t -> Packet_ctx.t -> candidate -> claim_result

(** {2 Packed-cell accessors (instrumentation, tests)} *)

val rank_of_packed : int -> int
val seq_of_packed : int -> int
val packed_of_candidate : candidate -> int

(** {2 Control plane (switch-CPU operations, not data path)} *)

(** Current number of stored (or admission-gated in-flight) entries. *)
val occupancy : t -> int

(** True once the tie-break stamp counter is close enough to
    [seq_limit] that {!renumber} must run before it saturates. *)
val needs_renumber : t -> bool

(** [renumber t] compacts tie-break stamps: live cells are re-stamped
    [0, 1, ...] in packed (rank, seq) order — preserving both rank order
    and same-rank FIFO order — the stamp counter is reset past them and
    the epoch register is bumped so in-flight scans restart rather than
    claim against stale stamps. *)
val renumber : t -> unit

(** Completed {!renumber} passes. *)
val renumbers : t -> int

(** Admissions whose rank was clamped to [max_rank]. *)
val rank_clamps : t -> int

(** [peek_slots t] is the live [(slot, rank, seq)] triples in packed
    order — the exact order pops would release them (tests only). *)
val peek_slots : t -> (int * int * int) list

(** [peek_payloads t] is the live payload word images in packed order
    (control-plane walk for end-state checks). *)
val peek_payloads : t -> int array list
