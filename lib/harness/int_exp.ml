(* INT experiment: correlate switch-side queue depth (from the in-band
   telemetry channel) with client-observed scheduling delay under a load
   sweep, and pin the disabled-path contract — turning INT off must not
   change a single engine event and must produce zero stamps. *)

open Draconis_stats
open Draconis_workload
module Obs = Draconis_obs
module Int_t = Obs.Int_telemetry

let kind = Synthetic.Fixed_500us

(* The INT gate is process-global; restore the ambient configuration on
   the way out so the experiment never leaks its override into later
   experiments (or the --int-out export of the whole invocation). *)
let with_int_set on f =
  let was = Int_t.enabled () in
  let budget = Int_t.budget () in
  if on then Int_t.enable ~budget () else Int_t.disable ();
  Fun.protect
    ~finally:(fun () -> if was then Int_t.enable ~budget () else Int_t.disable ())
    f

let max_level = 16

(* Deepest queue level by p99 depth — the one driving tail latency.
   Level [-1] is the PIFO rank store (absent on the circular-queue
   deployment swept here, present if a policy override installs one). *)
let deepest_queue c =
  let best = ref None in
  for level = -1 to max_level - 1 do
    match Int_t.Collector.depth_percentile c ~level 99.0 with
    | None -> ()
    | Some p99 -> (
      match !best with
      | Some (_, _, b) when b >= p99 -> ()
      | _ ->
        let p50 =
          Option.value (Int_t.Collector.depth_percentile c ~level 50.0) ~default:0
        in
        best := Some (level, p50, p99))
  done;
  !best

let level_name level = if level < 0 then "pifo" else Printf.sprintf "q%d" level

type point = {
  outcome : Runner.outcome;
  deepest : (int * int * int) option;  (* level, depth p50, depth p99 *)
  stacks : int;
  stamps : int;
  lost : int;
  top_chain : string;
}

let run_point ~quick ~load =
  (* The collector is installed inside the (possibly pooled) closure:
     the ambient slot is domain-local, and the runner reuses a
     caller-installed collector rather than shadowing it. *)
  let c = Int_t.Collector.create () in
  let outcome =
    Int_t.with_collector c (fun () ->
        let system = Systems.draconis Systems.default_spec in
        let horizon =
          Exp_common.horizon_for ~rate_tps:load
            ~target_tasks:(if quick then 4_000 else 20_000)
            ()
        in
        let driver = Exp_common.synthetic_driver kind ~rate_tps:load ~horizon in
        Runner.run system ~driver ~load_tps:load ~horizon ())
  in
  let top_chain =
    match Int_t.Collector.chains c with
    | [] -> "-"
    | (chain, n) :: _ ->
      let chain =
        if String.length chain > 44 then String.sub chain 0 41 ^ "..." else chain
      in
      Printf.sprintf "%dx %s" n chain
  in
  {
    outcome;
    deepest = deepest_queue c;
    stacks = Int_t.Collector.stacks c;
    stamps = Int_t.Collector.stamps c;
    lost = Int_t.Collector.lost c;
    top_chain;
  }

(* The disabled-path contract, asserted in-run so @int-smoke pins it:
   stamps ride existing packets and cost no engine events, so an
   INT-off repeat of the same seeded run must execute the identical
   event count and reach the identical outcome — and its collector must
   stay empty. *)
let disabled_check ~quick ~load =
  let once () =
    let c = Int_t.Collector.create () in
    let p =
      Int_t.with_collector c (fun () ->
          let system = Systems.draconis Systems.default_spec in
          let horizon =
            Exp_common.horizon_for ~rate_tps:load
              ~target_tasks:(if quick then 4_000 else 20_000)
              ()
          in
          let driver = Exp_common.synthetic_driver kind ~rate_tps:load ~horizon in
          Runner.run system ~driver ~load_tps:load ~horizon ())
    in
    (p, c)
  in
  let on_o, on_c = with_int_set true once in
  let off_o, off_c = with_int_set false once in
  if Int_t.Collector.stamps on_c = 0 then
    failwith "int: enabled run produced no stamps — the channel is dead";
  if Int_t.Collector.stamps off_c <> 0 || Int_t.Collector.stacks off_c <> 0 then
    failwith
      (Printf.sprintf "int: disabled run still produced %d stamps in %d stacks"
         (Int_t.Collector.stamps off_c)
         (Int_t.Collector.stacks off_c));
  if on_o.events <> off_o.events then
    failwith
      (Printf.sprintf
         "int: event count changed with telemetry on (%d) vs off (%d) — stamps must \
          ride existing packets"
         on_o.events off_o.events);
  if
    on_o.submitted <> off_o.submitted
    || on_o.completed <> off_o.completed
    || on_o.sched_p99 <> off_o.sched_p99
  then
    failwith
      (Printf.sprintf
         "int: outcome diverged with telemetry on/off (submitted %d/%d, completed \
          %d/%d, p99 %d/%d)"
         on_o.submitted off_o.submitted on_o.completed off_o.completed on_o.sched_p99
         off_o.sched_p99);
  Printf.printf
    "disabled-path check: %d events identical on/off, %d stamps on, 0 stamps off\n%!"
    on_o.events
    (Int_t.Collector.stamps on_c)

let run ?(quick = false) () =
  let spec = Systems.default_spec in
  let executors = spec.workers * spec.executors_per_worker in
  let utilizations =
    if quick then [ 0.3; 0.8 ] else [ 0.1; 0.3; 0.5; 0.7; 0.85; 0.94 ]
  in
  let loads = Exp_common.loads kind ~executors ~utilizations in
  let points =
    with_int_set true (fun () ->
        Pool.map (List.map (fun load () -> run_point ~quick ~load) loads))
  in
  let table =
    Table.create
      ~columns:
        [ "load (tps)"; "util"; "sched p50 (us)"; "sched p99 (us)"; "queue";
          "depth p50"; "depth p99"; "stacks"; "stamps"; "lost"; "top recirc chain" ]
  in
  List.iter2
    (fun util p ->
      let o = p.outcome in
      let queue, d50, d99 =
        match p.deepest with
        | Some (level, p50, p99) ->
          (level_name level, string_of_int p50, string_of_int p99)
        | None -> ("-", "-", "-")
      in
      Table.add_row table
        [
          Printf.sprintf "%.0fk" (o.load_tps /. 1e3);
          Printf.sprintf "%.0f%%" (100.0 *. util);
          Exp_common.us o.sched_p50;
          Exp_common.us o.sched_p99;
          queue; d50; d99;
          string_of_int p.stacks;
          string_of_int p.stamps;
          string_of_int p.lost;
          p.top_chain;
        ])
    utilizations points;
  Table.print ~title:"INT: switch queue depth vs client scheduling delay" table;
  Report.add_outcomes (List.map (fun p -> p.outcome) points);
  (* Stress point for the on/off contract: the top of the sweep. *)
  disabled_check ~quick ~load:(List.nth loads (List.length loads - 1))
