open Draconis_sim
module Fabric = Draconis_net.Fabric
module Topology = Draconis_net.Topology
module Plan = Draconis_fault.Plan
module Sampler = Draconis_stats.Sampler

(* -- shard-count knob (mirrors Pool's jobs knob) ------------------------- *)

let env_var = "DRACONIS_SHARDS"
let max_shards = Pool.max_jobs

(* Invalid values fail loudly rather than silently running unsharded —
   the same contract as DRACONIS_CALENDAR and Pool's jobs knob. *)
let env_shards () =
  match Sys.getenv_opt env_var with
  | None | Some "" -> None
  | Some v -> (
    match int_of_string_opt (String.trim v) with
    | Some n when n >= 1 && n <= max_shards -> Some n
    | Some n ->
      invalid_arg
        (Printf.sprintf "Shard: %s=%d out of range [1, %d]" env_var n max_shards)
    | None -> invalid_arg (Printf.sprintf "Shard: %s=%S is not an integer" env_var v))

let override = ref None

let shards () =
  match !override with
  | Some n -> n
  | None -> ( match env_shards () with Some n -> n | None -> 1)

let set_shards n =
  if n < 1 || n > max_shards then
    invalid_arg
      (Printf.sprintf
         "Shard.set_shards: %d out of range [1, %d] (the OCaml 5 runtime caps \
          live domains; see Pool.max_jobs)"
         n max_shards);
  override := Some n

(* [None] (nothing requested anywhere) lets call sites that treat
   sharding as opt-in — the real cluster figures — stay on the legacy
   single-engine path unless the user actually asked for shards. *)
let requested () =
  match !override with Some n -> Some n | None -> env_shards ()

let run_windows ?until ?workers sync =
  let workers = match workers with Some w -> w | None -> shards () in
  if workers < 1 || workers > max_shards then
    invalid_arg
      (Printf.sprintf "Shard.run_windows: workers %d out of range [1, %d]" workers
         max_shards);
  (* More lanes than LPs would only park helpers at the batch barrier. *)
  let lanes = min workers (Array.length (Sync.lps sync)) in
  if lanes <= 1 then Sync.run ?until sync
  else begin
    let team = Pool.Team.create ~size:lanes in
    Fun.protect
      ~finally:(fun () -> Pool.Team.shutdown team)
      (fun () -> Sync.run ?until ~executor:(Pool.Team.run team) sync)
  end

(* -- the sharded cluster model ------------------------------------------- *)

type config = {
  clients : int;
  executors : int;
  interarrival : Dist.t;
  service : Dist.t;
  horizon : Time.t;
  seed : int;
  fabric : Fabric.config;
  faults : Plan.t;
}

let default_config =
  {
    (* ~80% utilization: 4 x 1/25us offered against 10 x 1/50us service
       capacity, so the queue sees real contention and the scheduling-
       delay percentiles are non-trivial baselines. *)
    clients = 4;
    executors = 10;
    interarrival = Dist.exponential ~mean:(Time.us 25);
    service = Dist.exponential ~mean:(Time.us 50);
    horizon = Time.ms 5;
    seed = 42;
    fabric = Fabric.default_config;
    faults = Plan.empty;
  }

type result = {
  outcome : Runner.outcome;
  windows : int;
  cross_posts : int;
  dropped : int;
  wall_s : float;
  lps : int;
  workers : int;
}

(* Fault plans compile to static time windows before the run, so whether
   a message falls into one depends only on (simulated time, endpoint) —
   never on the partitioning — and the RNG drop draw happens exactly
   when the loss probability is positive, keeping per-entity streams
   aligned across shard counts. *)
type fault_windows = {
  loss : (Time.t * Time.t * float) array;
  cuts : (Time.t * Time.t * int list) array;
  slow : (Time.t * Time.t * int * float) array;
}

let fault_windows plan =
  let loss = ref [] and cuts = ref [] and slow = ref [] in
  List.iter
    (fun { Plan.at; event } ->
      match event with
      | Plan.Loss_burst { duration; loss = p } ->
        loss := (at, at + duration, p) :: !loss
      | Plan.Partition { hosts; duration } -> cuts := (at, at + duration, hosts) :: !cuts
      | Plan.Straggler { node; factor; duration } ->
        slow := (at, at + duration, node, factor) :: !slow
      | (Plan.Switch_failover | Plan.Crash _) as e ->
        (* These change scheduler/executor state machines the model does
           not have; rejecting loudly beats silently ignoring them. *)
        invalid_arg
          ("Shard.run_model: fault not supported by the sharded model: "
          ^ Plan.event_to_string e))
    (Plan.events plan);
  {
    loss = Array.of_list (List.rev !loss);
    cuts = Array.of_list (List.rev !cuts);
    slow = Array.of_list (List.rev !slow);
  }

let loss_at w t =
  Array.fold_left
    (fun acc (a, b, p) -> if t >= a && t < b then Float.max acc p else acc)
    0.0 w.loss

let cut_at w t host =
  Array.exists (fun (a, b, hosts) -> t >= a && t < b && List.mem host hosts) w.cuts

let slow_at w t node =
  Array.fold_left
    (fun acc (a, b, n, f) -> if n = node && t >= a && t < b then Float.max acc f else acc)
    1.0 w.slow

(* Per-entity stream seed: splitmix-style (seed, entity) mix, so a
   stream depends only on the model entity, never on its LP. *)
let mix seed eid =
  let h = ref (seed lxor ((eid + 1) * 0x9E3779B97F4A7C1)) in
  h := (!h lxor (!h lsr 30)) * 0xBF58476D1CE4E5B;
  h := (!h lxor (!h lsr 27)) * 0x94D049BB133111E;
  (!h lxor (!h lsr 31)) land max_int

(* A model entity: the switch (eid 0, no host), a client, or an
   executor.  Each has its own RNG stream and per-source mailbox
   sequence counter; mutable state is only ever touched from the domain
   running the entity's LP. *)
type endpoint = {
  eid : int;
  host : int; (* -1 for the switch *)
  lp_index : int;
  rng : Rng.t;
  mutable seq : int;
  mutable submitted : int;
  mutable drops : int; (* sends this entity lost to fault windows *)
}

type runtime = {
  cfg : config;
  wins : fault_windows;
  lps : Lp.t array;
  mailboxes : Fabric.Mailbox.t array; (* one per LP *)
  base : Time.t; (* host_to_switch: minimum one-way latency *)
  jitter : Time.t;
}

let engine_of rt (e : endpoint) = Lp.engine rt.lps.(e.lp_index)

(* Every entity-to-entity message — even between entities that happen to
   share an LP — goes through the destination LP's mailbox, so same-time
   deliveries are ordered by the (at, src, seq) stamp alone and the
   outcome cannot depend on the partitioning. *)
let send rt ~(src : endpoint) ~(dst : endpoint) fn =
  let now = Engine.now (engine_of rt src) in
  let latency =
    rt.base + if rt.jitter > 0 then Rng.int src.rng (rt.jitter + 1) else 0
  in
  let lost =
    let p = loss_at rt.wins now in
    p > 0.0 && Rng.float src.rng < p
  in
  let cut =
    (src.host >= 0 && cut_at rt.wins now src.host)
    || (dst.host >= 0 && cut_at rt.wins now dst.host)
  in
  if lost || cut then src.drops <- src.drops + 1
  else begin
    src.seq <- src.seq + 1;
    Fabric.Mailbox.post rt.mailboxes.(dst.lp_index) ~now ~latency ~src:src.eid
      ~seq:src.seq fn
  end

type task = { service : Time.t; enqueued : Time.t }

(* All cluster-wide counters live on the switch entity, so they are only
   ever mutated from the switch LP's domain. *)
type switch_state = {
  sw : endpoint;
  queue : task Queue.t;
  busy : bool array;
  delays : Sampler.t;
  mutable dispatched : int;
  mutable completed : int;
}

let rec idle_executor busy i =
  if i >= Array.length busy then None
  else if not busy.(i) then Some i
  else idle_executor busy (i + 1)

(* Switch: FIFO queue, dispatch to the smallest-id idle executor.
   Executor: run the task for its (possibly straggler-scaled) service
   time on its own engine, then send the completion back — the pull loop
   that drives the next dispatch. *)
let rec try_dispatch rt st execs =
  if not (Queue.is_empty st.queue) then
    match idle_executor st.busy 0 with
    | None -> ()
    | Some x ->
      let task = Queue.pop st.queue in
      let now = Engine.now (engine_of rt st.sw) in
      st.busy.(x) <- true;
      st.dispatched <- st.dispatched + 1;
      Sampler.record st.delays (now - task.enqueued);
      send rt ~src:st.sw ~dst:execs.(x) (fun () ->
          run_task rt st execs x task.service);
      try_dispatch rt st execs

and run_task rt st execs x service =
  let exec = execs.(x) in
  let engine = engine_of rt exec in
  let now = Engine.now engine in
  (* Straggler node ids are executor indices in this model. *)
  let factor = slow_at rt.wins now x in
  let dur =
    if factor = 1.0 then max 1 service
    else max 1 (int_of_float (Float.round (float_of_int service *. factor)))
  in
  ignore
    (Engine.schedule engine ~after:dur (fun () ->
         send rt ~src:exec ~dst:st.sw (fun () ->
             st.completed <- st.completed + 1;
             st.busy.(x) <- false;
             try_dispatch rt st execs)))

let rec arrival rt st execs (cl : endpoint) () =
  let engine = engine_of rt cl in
  let now = Engine.now engine in
  cl.submitted <- cl.submitted + 1;
  let service = max 1 (rt.cfg.service cl.rng) in
  send rt ~src:cl ~dst:st.sw (fun () ->
      let sw_now = Engine.now (engine_of rt st.sw) in
      Queue.push { service; enqueued = sw_now } st.queue;
      try_dispatch rt st execs);
  let next = now + max 1 (rt.cfg.interarrival cl.rng) in
  if next <= rt.cfg.horizon then
    ignore (Engine.schedule engine ~after:(next - now) (arrival rt st execs cl))

let run_model ?lps:lp_count ?workers config =
  let lp_count = match lp_count with Some n -> n | None -> shards () in
  let workers = match workers with Some w -> w | None -> lp_count in
  if config.clients < 1 then invalid_arg "Shard.run_model: need at least 1 client";
  if config.executors < 1 then
    invalid_arg "Shard.run_model: need at least 1 executor";
  if config.horizon < 1 then invalid_arg "Shard.run_model: need a positive horizon";
  if lp_count < 1 || lp_count > max_shards then
    invalid_arg
      (Printf.sprintf "Shard.run_model: lps %d out of range [1, %d]" lp_count
         max_shards);
  let wins = fault_windows config.faults in
  let nodes = config.clients + config.executors in
  (* LP layout: with one LP everything is sequential (the reference
     path); otherwise LP 0 holds the switch alone and the hosts split
     into lp_count - 1 rack-aligned groups. *)
  let host_groups = max 1 (lp_count - 1) in
  if host_groups > nodes then
    invalid_arg
      (Printf.sprintf "Shard.run_model: %d LPs need at least %d hosts (have %d)"
         lp_count (lp_count - 1) nodes);
  let topo = Topology.create ~nodes ~racks:(min 4 nodes) in
  let part = Topology.partition topo ~groups:host_groups in
  let lp_of_host h = if lp_count = 1 then 0 else 1 + part.(h) in
  let lookahead = Fabric.lookahead config.fabric in
  let lps = Array.init lp_count (fun i -> Lp.create ~id:i ~seed:config.seed ()) in
  let mailboxes = Array.map (fun lp -> Fabric.Mailbox.create ~lookahead lp) lps in
  let rt =
    {
      cfg = config;
      wins;
      lps;
      mailboxes;
      base = config.fabric.Fabric.host_to_switch;
      jitter = config.fabric.Fabric.jitter;
    }
  in
  let endpoint eid host =
    {
      eid;
      host;
      lp_index = (if host < 0 then 0 else lp_of_host host);
      rng = Rng.create ~seed:(mix config.seed eid);
      seq = 0;
      submitted = 0;
      drops = 0;
    }
  in
  let sw = endpoint 0 (-1) in
  let clients = Array.init config.clients (fun c -> endpoint (1 + c) c) in
  let execs =
    Array.init config.executors (fun x ->
        endpoint (1 + config.clients + x) (config.clients + x))
  in
  let st =
    {
      sw;
      queue = Queue.create ();
      busy = Array.make config.executors false;
      delays = Sampler.create ();
      dispatched = 0;
      completed = 0;
    }
  in
  Array.iter
    (fun cl ->
      let first = max 1 (config.interarrival cl.rng) in
      if first <= config.horizon then
        ignore (Engine.schedule (engine_of rt cl) ~after:first (arrival rt st execs cl)))
    clients;
  let sync = Sync.create ~lookahead lps in
  let t0 = Unix.gettimeofday () in
  run_windows ~workers sync;
  let wall_s = Unix.gettimeofday () -. t0 in
  let submitted = Array.fold_left (fun a c -> a + c.submitted) 0 clients in
  let dropped =
    sw.drops
    + Array.fold_left (fun a c -> a + c.drops) 0 clients
    + Array.fold_left (fun a e -> a + e.drops) 0 execs
  in
  let has = Sampler.count st.delays > 0 in
  let outcome : Runner.outcome =
    {
      system = "shard-sim";
      load_tps = 0.0;
      sched_p50 = (if has then Sampler.percentile st.delays 50.0 else 0);
      sched_p99 = (if has then Sampler.percentile st.delays 99.0 else 0);
      sched_mean = (if has then Sampler.mean st.delays else 0.0);
      decisions_per_sec = float_of_int st.dispatched /. Time.to_s config.horizon;
      submitted;
      started = st.dispatched;
      completed = st.completed;
      timeouts = submitted - st.completed;
      rejected = 0;
      recirc_fraction = 0.0;
      recirc_drops = 0;
      swaps = 0;
      recirculations = 0;
      repair_flags = 0;
      events = Sync.executed sync;
      (* Wall-clock rate is attached by the bench wrapper; the outcome
         itself stays a pure function of (config, lps) so the property
         suite can compare runs structurally. *)
      events_per_sec = 0.0;
      drained = Sync.drained sync;
      has_latency = true;
      phases = [];
    }
  in
  {
    outcome;
    windows = Sync.windows sync;
    cross_posts = Array.fold_left (fun a lp -> a + Lp.posted lp) 0 lps;
    dropped;
    wall_s;
    lps = lp_count;
    workers;
  }
