type entry = {
  name : string;
  wall_s : float;
  outcomes : Runner.outcome list;
}

(* Mutated from the coordinating domain only: figures hand their pooled
   rows to [add_outcomes] after the pool has joined its workers. *)
let entries : entry list ref = ref []
let pending : Runner.outcome list ref = ref []

let reset () =
  entries := [];
  pending := []

let add_outcomes rows = pending := !pending @ rows

let finish_experiment ~name ~wall_s =
  entries := !entries @ [ { name; wall_s; outcomes = !pending } ];
  pending := []

let events entry =
  List.fold_left (fun acc (o : Runner.outcome) -> acc + o.events) 0 entry.outcomes

let json_escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* JSON has no NaN/infinity literals; map them to 0. *)
let json_float f =
  if Float.is_nan f || Float.abs f = Float.infinity then "0"
  else if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
  else Printf.sprintf "%g" f

let outcome_json (o : Runner.outcome) =
  (* Optional per-phase percentiles; present only for attributed runs so
     unobserved reports stay byte-identical to schema draconis-bench/1
     as first shipped. *)
  let phases =
    if o.phases = [] then ""
    else
      Printf.sprintf ",\"phases\":{%s}"
        (String.concat ","
           (List.map
              (fun (name, p50, p99) ->
                Printf.sprintf "\"%s\":{\"p50_ns\":%d,\"p99_ns\":%d}" (json_escape name)
                  p50 p99)
              o.phases))
  in
  (* Calendar-only benchmark rows have no scheduling-latency semantics:
     serialize the block as null so draconis-trace compare skips it
     (a null never checks against a number) instead of pinning future
     runs to meaningless zeros. *)
  let latency =
    if o.has_latency then
      Printf.sprintf
        "\"sched_p50_ns\":%d,\"sched_p99_ns\":%d,\"sched_mean_ns\":%s,\
         \"decisions_per_sec\":%s"
        o.sched_p50 o.sched_p99 (json_float o.sched_mean)
        (json_float o.decisions_per_sec)
    else
      "\"sched_p50_ns\":null,\"sched_p99_ns\":null,\"sched_mean_ns\":null,\
       \"decisions_per_sec\":null"
  in
  (* Wall-clock event throughput rides along on benchmark rows only; it
     is informational (compare never checks it), and omitting it for
     figure rows keeps their serialization byte-identical to before. *)
  let rate =
    if o.events_per_sec > 0.0 then
      Printf.sprintf ",\"events_per_sec\":%s" (json_float o.events_per_sec)
    else ""
  in
  Printf.sprintf
    "{\"system\":\"%s\",\"load_tps\":%s,%s,\"submitted\":%d,\"completed\":%d,\
     \"timeouts\":%d,\"rejected\":%d,\"recirc_fraction\":%s,\"recirc_drops\":%d,\
     \"swaps\":%d,\"recirculations\":%d,\"repair_flags\":%d,\"events\":%d%s,\
     \"drained\":%b%s}"
    (json_escape o.system) (json_float o.load_tps) latency o.submitted
    o.completed o.timeouts o.rejected
    (json_float o.recirc_fraction)
    o.recirc_drops o.swaps o.recirculations o.repair_flags o.events rate o.drained phases

let entry_json e =
  let ev = events e in
  let events_per_sec = if e.wall_s > 0.0 then float_of_int ev /. e.wall_s else 0.0 in
  Printf.sprintf
    "    {\"name\":\"%s\",\"wall_s\":%.3f,\"events\":%d,\"events_per_sec\":%s,\n\
     \     \"outcomes\":[%s]}"
    (json_escape e.name) e.wall_s ev (json_float events_per_sec)
    (String.concat "," (List.map outcome_json e.outcomes))

let to_json ~jobs ~shards ~quick =
  let total_wall = List.fold_left (fun acc e -> acc +. e.wall_s) 0.0 !entries in
  let total_events = List.fold_left (fun acc e -> acc + events e) 0 !entries in
  Printf.sprintf
    "{\n\
     \  \"schema\": \"draconis-bench/1\",\n\
     \  \"jobs\": %d,\n\
     \  \"shards\": %d,\n\
     \  \"quick\": %b,\n\
     \  \"workload_seed\": %d,\n\
     \  \"total_wall_s\": %.3f,\n\
     \  \"total_events\": %d,\n\
     \  \"experiments\": [\n%s\n  ]\n}\n"
    jobs shards quick (Runner.workload_seed ()) total_wall total_events
    (String.concat ",\n" (List.map entry_json !entries))

let write ~path ~jobs ~shards ~quick =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_json ~jobs ~shards ~quick))
