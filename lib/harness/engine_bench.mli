(** engine-bench: microbenchmark of the allocation-free event core.

    Runs an identical seeded event storm (near-future delays dominating,
    a far-future tail for the overflow tier, periodic cancels for pool
    churn) under both {!Draconis_sim.Engine.calendar}s, asserts they
    executed the same events to the same final clock, and reports
    events/sec and minor words allocated per event for each.

    The report rows ([engine-heap] / [engine-wheel]) carry only
    deterministic counts, so a committed baseline compares cleanly with
    [draconis-trace compare] regardless of machine speed. *)

val run : ?quick:bool -> unit -> unit
