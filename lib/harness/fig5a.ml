open Draconis_sim
open Draconis_stats
open Draconis_workload
module CS = Draconis_baselines.Central_server

let kind = Synthetic.Fixed_500us

let systems ~timeout spec =
  [
    (* Draconis honors a requested shard count (--shards/DRACONIS_SHARDS)
       — outcomes are bit-identical across shard counts, so the figure
       is unchanged; only the execution vehicle is. *)
    (fun () -> Systems.draconis ?shards:(Shard.requested ()) spec);
    (fun () -> Systems.racksched spec);
    (fun () -> Systems.r2p2 ~k:3 ~client_timeout:timeout spec);
    (fun () -> Systems.sparrow ~schedulers:1 spec);
    (fun () -> Systems.sparrow ~schedulers:2 spec);
    (fun () -> Systems.central_server CS.Dpdk spec);
    (fun () -> Systems.central_server CS.Socket spec);
  ]

let run ?(quick = false) () =
  let spec = Systems.default_spec in
  let executors = spec.workers * spec.executors_per_worker in
  let utilizations =
    if quick then [ 0.3; 0.7 ] else [ 0.1; 0.3; 0.5; 0.62; 0.78; 0.87; 0.94 ]
  in
  let loads = Exp_common.loads kind ~executors ~utilizations in
  let timeout = Time.ms 1 in
  let table =
    Table.create
      ~columns:
        [ "system"; "load (tps)"; "util"; "p50 (us)"; "p99 (us)"; "completed";
          "timeouts"; "drained" ]
  in
  (* One self-contained closure per (system x load) grid point: the
     system (own engine) and the seeded workload RNG are both created
     inside the closure, so grid points can run on any pool worker.
     Rows come back in submission order, keeping the table bit-identical
     to the sequential sweep. *)
  let grid =
    List.concat_map
      (fun make ->
        List.map2 (fun load util -> (make, load, util)) loads utilizations)
      (systems ~timeout spec)
  in
  let rows =
    Pool.map
      (List.map
         (fun (make, load, _) () ->
           let system = make () in
           let horizon =
             Exp_common.horizon_for ~rate_tps:load
               ~target_tasks:(if quick then 5_000 else 25_000)
               ()
           in
           let driver = Exp_common.synthetic_driver kind ~rate_tps:load ~horizon in
           Runner.run system ~driver ~load_tps:load ~horizon ())
         grid)
  in
  Report.add_outcomes rows;
  List.iter2
    (fun (_, load, util) (o : Runner.outcome) ->
      Table.add_row table
        [
          o.system;
          Printf.sprintf "%.0fk" (load /. 1e3);
          Printf.sprintf "%.0f%%" (100.0 *. util);
          Exp_common.us o.sched_p50;
          Exp_common.us o.sched_p99;
          Printf.sprintf "%d/%d" o.completed o.submitted;
          string_of_int o.timeouts;
          Exp_common.yn o.drained;
        ])
    grid rows;
  Table.print ~title:"Fig 5a: load vs p99 scheduling delay, 500us tasks" table;
  Exp_common.print_phase_breakdown
    ~title:"Fig 5a: per-phase delay decomposition (attributed runs)" rows
