open Draconis_sim
open Draconis_stats
open Draconis
module Obs = Draconis_obs

type outcome = {
  system : string;
  load_tps : float;
  sched_p50 : int;
  sched_p99 : int;
  sched_mean : float;
  decisions_per_sec : float;
  submitted : int;
  started : int;
  completed : int;
  timeouts : int;
  rejected : int;
  recirc_fraction : float;
  recirc_drops : int;
  swaps : int;
  recirculations : int;
  repair_flags : int;
  events : int;
  events_per_sec : float;
  drained : bool;
  has_latency : bool;
  phases : (string * int * int) list;
}

let pp_outcome fmt o =
  Format.fprintf fmt
    "%s@%.0ftps: p50=%a p99=%a decisions=%.0f/s submitted=%d completed=%d%s" o.system
    o.load_tps Time.pp o.sched_p50 Time.pp o.sched_p99 o.decisions_per_sec o.submitted
    o.completed
    (if o.drained then "" else " (NOT DRAINED)")

type driver = Engine.t -> Rng.t -> submit:(Draconis_proto.Task.t list -> unit) -> unit

let drain_system (system : Systems.running) ~deadline =
  let control = system.control in
  let step = Time.ms 1 in
  let rec go () =
    if system.outstanding () = 0 then true
    else if control.Systems.now () >= deadline then false
    else begin
      control.Systems.run_until (min deadline (control.Systems.now () + step));
      go ()
    end
  in
  go ()

let collect (system : Systems.running) ~load_tps ~horizon ~drained =
  let metrics = system.metrics in
  let delays = Metrics.scheduling_delay metrics in
  let has_samples = Sampler.count delays > 0 in
  let extras = system.extras () in
  {
    system = system.name;
    load_tps;
    sched_p50 = (if has_samples then Sampler.percentile delays 50.0 else 0);
    sched_p99 = (if has_samples then Sampler.percentile delays 99.0 else 0);
    sched_mean = (if has_samples then Sampler.mean delays else 0.0);
    decisions_per_sec = Meter.rate_over (Metrics.decisions metrics) ~duration:horizon;
    submitted = Metrics.submitted metrics;
    started = Metrics.started metrics;
    completed = Metrics.completed metrics;
    timeouts = Metrics.timeouts metrics;
    rejected = Metrics.rejected metrics;
    recirc_fraction = extras.Systems.recirc_fraction;
    recirc_drops = extras.Systems.recirc_drops;
    swaps = Metrics.swaps metrics;
    recirculations = Metrics.recirculations metrics;
    repair_flags = Metrics.repair_flags metrics;
    events = system.control.Systems.events ();
    events_per_sec = 0.0;
    drained;
    has_latency = true;
    phases =
      (* Ambient context ⇒ this run is attributing phases; the sealed
         tasks at collect time are exactly the completed ones. *)
      (match Obs.Trace_ctx.current () with
      | Some ctx -> Obs.Attribution.phase_percentiles (Obs.Trace_ctx.collector ctx)
      | None -> []);
  }

(* When the sink is enabled, the whole run executes under an ambient
   recorder (each run is single-domain, so pool workers never share
   one), with probes sampling the system's instantaneous state.  With
   the sink disabled this adds nothing but the [config] check. *)
let observed (system : Systems.running) ~label ~until f =
  match Obs.Sink.config () with
  | None -> f ()
  | Some { Obs.Sink.probe_interval; capacity } ->
    let recorder = Obs.Recorder.create ~capacity ~label () in
    (* Phase attribution only where the whole milestone sequence exists
       (the Draconis data path); a baseline's partial stream would
       produce bogus breakdowns. *)
    let ctx =
      if system.phase_attribution then Some (Obs.Trace_ctx.create ()) else None
    in
    (* INT telemetry: reuse a caller-installed collector (the int bench
       experiment manages its own to read depth figures back), else own
       one for the run.  Either way its sections land on this run's
       recorder. *)
    let int_collector, own_int =
      if Obs.Int_telemetry.enabled () then
        match Obs.Int_telemetry.current_collector () with
        | Some c -> (Some c, None)
        | None ->
          let c = Obs.Int_telemetry.Collector.create () in
          (Some c, Some c)
      else (None, None)
    in
    let body () =
      (match system.probes () with
      | [] -> ()
      | probes -> Obs.Probe.attach system.engine ~interval:probe_interval ~until probes);
      f ()
    in
    let body () =
      match ctx with
      | None -> body ()
      | Some ctx -> Obs.Trace_ctx.with_ctx ctx body
    in
    let outcome =
      Obs.Recorder.with_recorder recorder (fun () ->
          match own_int with
          | None -> body ()
          | Some c -> Obs.Int_telemetry.with_collector c body)
    in
    (match ctx with
    | None -> ()
    | Some ctx ->
      let collector = Obs.Trace_ctx.finish ctx in
      Obs.Recorder.set_attribution recorder (Obs.Attribution.to_json collector));
    (match int_collector with
    | None -> ()
    | Some c ->
      Obs.Int_telemetry.Collector.emit_series c (fun ~at ~name v ->
          Obs.Recorder.sample recorder ~at name v);
      Obs.Recorder.set_int_telemetry recorder (Obs.Int_telemetry.Collector.to_json c));
    Obs.Sink.put recorder;
    outcome

(* Process-wide workload-seed override (the bench --seed flag).  The
   historical default stays the figure-pinning constant so committed
   baselines remain reproducible byte for byte. *)
let default_workload_seed = 1_000_003
let workload_seed_override = ref None

let workload_seed () =
  Option.value ~default:default_workload_seed !workload_seed_override

let set_workload_seed seed = workload_seed_override := Some seed

(* Feed the driver's submissions into the system.  Single-engine
   systems take them live: the driver schedules directly on the
   system's engine.  A staged system (sharded cluster) instead gets the
   whole submission schedule up front: the driver runs against a
   throwaway staging engine whose only effect is to record each
   (time, job), and the recorded schedule is replayed through
   [control.stage] — which pins every job onto the owning client's LP
   {e before} any simulated time advances, so the pre-run event order
   (and hence the outcome) is independent of the shard count. *)
let feed (system : Systems.running) ~driver ~horizon rng =
  match system.control.Systems.stage with
  | None -> driver system.engine rng ~submit:system.submit
  | Some stage ->
    let staging = Engine.create () in
    driver staging rng ~submit:(fun tasks -> stage ~at:(Engine.now staging) tasks);
    Engine.run ~until:horizon staging

let run (system : Systems.running) ~driver ~load_tps ~horizon ?drain ?workload_seed:ws
    () =
  let workload_seed = Option.value ws ~default:(workload_seed ()) in
  let drain = Option.value drain ~default:(4 * horizon) in
  let control = system.control in
  Fun.protect ~finally:control.Systems.close (fun () ->
      observed system
        ~label:(Printf.sprintf "%s@%.0ftps" system.name load_tps)
        ~until:(horizon + drain)
        (fun () ->
          let rng = Rng.create ~seed:workload_seed in
          feed system ~driver ~horizon rng;
          control.Systems.run_until horizon;
          let drained = drain_system system ~deadline:(horizon + drain) in
          control.Systems.finish ();
          collect system ~load_tps ~horizon ~drained))

let run_closed (system : Systems.running) ~horizon ?drain () =
  let drain = Option.value drain ~default:(4 * horizon) in
  let control = system.control in
  Fun.protect ~finally:control.Systems.close (fun () ->
      observed system
        ~label:(Printf.sprintf "%s@closed" system.name)
        ~until:(horizon + drain)
        (fun () ->
          control.Systems.run_until horizon;
          let drained = drain_system system ~deadline:(horizon + drain) in
          control.Systems.finish ();
          collect system ~load_tps:0.0 ~horizon ~drained))
