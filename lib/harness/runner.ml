open Draconis_sim
open Draconis_stats
open Draconis

type outcome = {
  system : string;
  load_tps : float;
  sched_p50 : int;
  sched_p99 : int;
  sched_mean : float;
  decisions_per_sec : float;
  submitted : int;
  started : int;
  completed : int;
  timeouts : int;
  rejected : int;
  recirc_fraction : float;
  recirc_drops : int;
  events : int;
  drained : bool;
}

let pp_outcome fmt o =
  Format.fprintf fmt
    "%s@%.0ftps: p50=%a p99=%a decisions=%.0f/s submitted=%d completed=%d%s" o.system
    o.load_tps Time.pp o.sched_p50 Time.pp o.sched_p99 o.decisions_per_sec o.submitted
    o.completed
    (if o.drained then "" else " (NOT DRAINED)")

type driver = Engine.t -> Rng.t -> submit:(Draconis_proto.Task.t list -> unit) -> unit

let drain_system (system : Systems.running) ~deadline =
  let step = Time.ms 1 in
  let rec go () =
    if system.outstanding () = 0 then true
    else if Engine.now system.engine >= deadline then false
    else begin
      Engine.run
        ~until:(min deadline (Engine.now system.engine + step))
        system.engine;
      go ()
    end
  in
  go ()

let collect (system : Systems.running) ~load_tps ~horizon ~drained =
  let metrics = system.metrics in
  let delays = Metrics.scheduling_delay metrics in
  let has_samples = Sampler.count delays > 0 in
  let extras = system.extras () in
  {
    system = system.name;
    load_tps;
    sched_p50 = (if has_samples then Sampler.percentile delays 50.0 else 0);
    sched_p99 = (if has_samples then Sampler.percentile delays 99.0 else 0);
    sched_mean = (if has_samples then Sampler.mean delays else 0.0);
    decisions_per_sec = Meter.rate_over (Metrics.decisions metrics) ~duration:horizon;
    submitted = Metrics.submitted metrics;
    started = Metrics.started metrics;
    completed = Metrics.completed metrics;
    timeouts = Metrics.timeouts metrics;
    rejected = Metrics.rejected metrics;
    recirc_fraction = extras.Systems.recirc_fraction;
    recirc_drops = extras.Systems.recirc_drops;
    events = Engine.executed system.engine;
    drained;
  }

let run (system : Systems.running) ~driver ~load_tps ~horizon ?drain
    ?(workload_seed = 1_000_003) () =
  let drain = Option.value drain ~default:(4 * horizon) in
  let rng = Rng.create ~seed:workload_seed in
  driver system.engine rng ~submit:system.submit;
  Engine.run ~until:horizon system.engine;
  let drained = drain_system system ~deadline:(horizon + drain) in
  collect system ~load_tps ~horizon ~drained

let run_closed (system : Systems.running) ~horizon ?drain () =
  let drain = Option.value drain ~default:(4 * horizon) in
  Engine.run ~until:horizon system.engine;
  let drained = drain_system system ~deadline:(horizon + drain) in
  collect system ~load_tps:0.0 ~horizon ~drained
