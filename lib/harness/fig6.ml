open Draconis_sim
open Draconis_stats
open Draconis_workload
module CS = Draconis_baselines.Central_server

let run ?(quick = false) () =
  let spec = Systems.default_spec in
  let executors = spec.workers * spec.executors_per_worker in
  let utilizations = if quick then [ 0.5 ] else [ 0.3; 0.5; 0.7; 0.85; 0.94 ] in
  let kinds = if quick then [ Synthetic.Fixed_100us ] else Synthetic.all in
  List.iter
    (fun kind ->
      let loads = Exp_common.loads kind ~executors ~utilizations in
      let table =
        Table.create
          ~columns:
            ("system"
            :: List.map (fun u -> Printf.sprintf "p99@%.0f%% (us)" (100.0 *. u))
                 utilizations)
      in
      let systems =
        [
          (* Sharding is outcome-neutral; see fig5a. *)
          (fun () -> Systems.draconis ?shards:(Shard.requested ()) spec);
          (fun () -> Systems.racksched spec);
          (fun () -> Systems.r2p2 ~k:3 ~client_timeout:(Time.ms 2) spec);
          (fun () -> Systems.central_server CS.Dpdk spec);
        ]
      in
      let outcomes =
        Pool.map
          (List.concat_map
             (fun make ->
               List.map
                 (fun load () ->
                   let system = make () in
                   let horizon =
                     Exp_common.horizon_for ~rate_tps:load
                       ~target_tasks:(if quick then 4_000 else 20_000)
                       ()
                   in
                   let driver =
                     Exp_common.synthetic_driver kind ~rate_tps:load ~horizon
                   in
                   Runner.run system ~driver ~load_tps:load ~horizon ())
                 loads)
             systems)
      in
      Report.add_outcomes outcomes;
      List.iter
        (fun row ->
          match row with
          | [] -> ()
          | (first : Runner.outcome) :: _ ->
            Table.add_row table
              (first.system :: List.map (fun (o : Runner.outcome) -> Exp_common.us o.sched_p99) row))
        (Exp_common.chunk (List.length loads) outcomes);
      Table.print
        ~title:
          (Printf.sprintf "Fig 6 (%s): p99 scheduling delay vs utilization"
             (Synthetic.name kind))
        table;
      Exp_common.print_phase_breakdown
        ~title:
          (Printf.sprintf "Fig 6 (%s): per-phase delay decomposition (attributed runs)"
             (Synthetic.name kind))
        outcomes)
    kinds
