(** Experiment runner: drive a workload into a running system, then
    collect the paper's metrics.

    A run has three phases: submissions are generated over the
    measurement [horizon]; the system then gets [drain] extra simulated
    time to finish outstanding tasks; finally the metrics are frozen
    into an {!outcome}.  At overload (the right-hand edge of the paper's
    load sweeps) the drain deadline cuts the run off and the outcome
    reports how much work was left. *)

open Draconis_sim


type outcome = {
  system : string;
  load_tps : float;  (** offered load *)
  sched_p50 : int;  (** scheduling-delay percentiles, ns *)
  sched_p99 : int;
  sched_mean : float;
  decisions_per_sec : float;
  submitted : int;
  started : int;
  completed : int;
  timeouts : int;
  rejected : int;  (** tasks bounced by a full scheduler queue *)
  recirc_fraction : float;
  recirc_drops : int;
  swaps : int;  (** switch task swaps (§5.1); 0 for baselines *)
  recirculations : int;  (** scheduler-produced recirculations *)
  repair_flags : int;  (** circular-queue repair-flag trips (§4.7) *)
  events : int;  (** simulation events the engine executed *)
  events_per_sec : float;
      (** wall-clock event throughput; informational (never checked by
          [draconis-trace compare]) and only serialized when positive —
          calendar/shard benchmark rows use it, figure rows leave it 0 *)
  drained : bool;
  has_latency : bool;
      (** whether the scheduling-latency block ([sched_p50]/[sched_p99]/
          [sched_mean]/[decisions_per_sec]) is meaningful for this row.
          Calendar-only benchmark rows (engine-bench) set it false, and
          the JSON report then serializes those fields as [null] so
          [draconis-trace compare] cannot regress against garbage
          zeros. *)
  phases : (string * int * int) list;
      (** per-phase (name, p50 ns, p99 ns) latency decomposition from
          {!Draconis_obs.Attribution}; non-empty only when the run
          executed under an enabled {!Draconis_obs.Sink} on a system
          with {!Systems.running.phase_attribution} *)
}

val pp_outcome : Format.formatter -> outcome -> unit

(** A workload driver: schedules job submissions on the engine.  The
    [submit] callback assigns ids and sends; drivers come from
    {!Draconis_workload.Arrival} / {!Draconis_workload.Google_trace}. *)
type driver = Engine.t -> Rng.t -> submit:(Draconis_proto.Task.t list -> unit) -> unit

(** The effective workload seed: the [set_workload_seed] override if
    any, else the historical figure-pinning default (1_000_003). *)
val workload_seed : unit -> int

(** Process-wide workload-seed override (the bench [--seed] flag);
    applies to every subsequent [run] that passes no explicit
    [?workload_seed]. *)
val set_workload_seed : int -> unit

(** [run system ~driver ~load_tps ~horizon ?drain ?workload_seed ()] —
    [drain] defaults to 4x the horizon, [workload_seed] to
    {!workload_seed}[ ()].

    Time advances through the system's {!Systems.control}, so the same
    call drives a single engine or a sharded cluster's barrier-window
    protocol.  When the control requires staging ([stage = Some]), the
    driver first runs against a throwaway engine to record its
    submission schedule, which is then replayed onto the owning client
    LPs before any simulated time advances.  The control is closed
    (worker domains joined) before returning, even on exception. *)
val run :
  Systems.running ->
  driver:driver ->
  load_tps:float ->
  horizon:Time.t ->
  ?drain:Time.t ->
  ?workload_seed:int ->
  unit ->
  outcome

(** [run_closed system ~horizon ()] runs with no submissions beyond what
    the caller already scheduled — used by tests and custom figures. *)
val run_closed : Systems.running -> horizon:Time.t -> ?drain:Time.t -> unit -> outcome
