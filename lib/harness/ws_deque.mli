(** Chase-Lev work-stealing deque.

    Single-owner, multi-thief: the owner {!push}es and {!pop}s at the
    bottom in LIFO order; any other domain may {!steal} the oldest
    element from the top with a CAS.  The backing buffer is circular
    and grows by doubling while preserving logical indices, so steals
    racing a resize remain linearizable.  This is the per-worker run
    queue behind {!Pool.Team}'s window executor.

    Progress/consistency contract (pinned by the property suite):
    every pushed element is returned by exactly one [pop] or [steal] —
    nothing is lost, nothing is duplicated — and [steal] may spuriously
    return [None] under contention (lost CAS), never a wrong element. *)

type 'a t

(** [create ?size_exponent ()] — initial capacity [2^size_exponent]
    (default 32 slots).
    @raise Invalid_argument if the exponent is outside [\[1, 22\]]. *)
val create : ?size_exponent:int -> unit -> 'a t

(** Owner only: push at the bottom, growing the buffer if full. *)
val push : 'a t -> 'a -> unit

(** Owner only: pop the most recently pushed element ([None] when
    empty, or when the last element was lost to a racing thief). *)
val pop : 'a t -> 'a option

(** Any domain: take the oldest element.  [None] means empty {e or} a
    lost race — callers scan victims again while work remains. *)
val steal : 'a t -> 'a option

(** Racy size estimate: exact for the owner, a scan hint for thieves. *)
val size : 'a t -> int

(** Current buffer capacity (grows by doubling). *)
val capacity : 'a t -> int
