open Draconis_sim
open Draconis_stats

(* Self-propagating event storm: each fired event schedules its
   successor, so schedule/step/release churn through the engine's pooled
   slots at steady state.  The delay mix covers every calendar tier —
   mostly near-future ticks that stay in the wheel's low levels, a mid
   band that exercises cascading, and a far tail beyond the 2^25-tick
   window that lands in the overflow heap.  Every 8th event also parks a
   no-op victim in a small ring and cancels the victim it evicts, so the
   cancel path and the generation-counter guard see traffic too.

   All randomness comes from one seeded splitmix stream drawn inside the
   handlers.  Both calendars execute the exact same event order, so the
   draw sequence — and with it every count below — is identical across
   [Heap] and [Wheel]; the run asserts this. *)

type measurement = {
  calendar : Engine.calendar;
  scheduled : int;
  cancels : int;
  executed : int;
  final_clock : Time.t;
  wall_s : float;
  words_per_event : float;
}

let ring_size = 128

let storm ~calendar ~total ~seed =
  let engine = Engine.create ~calendar () in
  let rng = Rng.create ~seed in
  let scheduled = ref 0 in
  let cancels = ref 0 in
  let minor0 = Gc.minor_words () in
  let t0 = Unix.gettimeofday () in
  (* The ring needs a handle to start from; burn one dummy event. *)
  let dummy = Engine.schedule engine ~after:1 ignore in
  incr scheduled;
  let ring = Array.make ring_size dummy in
  let ring_pos = ref 0 in
  let delay () =
    let r = Rng.int rng 100 in
    if r < 90 then 1 + Rng.int rng 50_000 (* near: wheel levels 0-3 *)
    else if r < 98 then 1 + Rng.int rng (1 lsl 22) (* mid: cascades *)
    else (1 lsl 25) + Rng.int rng (1 lsl 26) (* far: overflow tier *)
  in
  let rec fire () =
    if !scheduled < total then begin
      ignore (Engine.schedule engine ~after:(delay ()) fire);
      incr scheduled;
      if !scheduled land 7 = 0 && !scheduled < total then begin
        let victim = Engine.schedule engine ~after:(1 + Rng.int rng 10_000) ignore in
        incr scheduled;
        let slot = !ring_pos land (ring_size - 1) in
        (* The evicted handle may already have fired; the generation
           counter makes the stale cancel a no-op. *)
        Engine.cancel engine ring.(slot);
        incr cancels;
        ring.(slot) <- victim;
        incr ring_pos
      end
    end
  in
  (* Enough concurrent chains to hold a standing population in the tens
     of thousands — the regime of a simulated cluster, where the heap
     pays ~15 comparison levels per operation. *)
  let chains = max 16 (total / 64) in
  for _ = 1 to chains do
    ignore (Engine.schedule engine ~after:(delay ()) fire);
    incr scheduled
  done;
  Engine.run engine;
  let wall_s = Unix.gettimeofday () -. t0 in
  let words = Gc.minor_words () -. minor0 in
  let executed = Engine.executed engine in
  {
    calendar;
    scheduled = !scheduled;
    cancels = !cancels;
    executed;
    final_clock = Engine.now engine;
    wall_s;
    words_per_event = words /. float_of_int (max 1 executed);
  }

let outcome (m : measurement) : Runner.outcome =
  (* A calendar storm has no scheduling-latency semantics, so the
     latency block is marked absent ([has_latency = false] serializes it
     as null) instead of shipping zeros that draconis-trace would then
     treat as a baseline to regress against.  The wall-clock events/sec
     rides along as an informational field compare never checks. *)
  {
    system = "engine-" ^ Engine.calendar_name m.calendar;
    load_tps = 0.0;
    sched_p50 = 0;
    sched_p99 = 0;
    sched_mean = 0.0;
    decisions_per_sec = 0.0;
    submitted = m.scheduled;
    started = m.executed;
    completed = m.executed;
    timeouts = 0;
    rejected = m.cancels;
    recirc_fraction = 0.0;
    recirc_drops = 0;
    swaps = 0;
    recirculations = 0;
    repair_flags = 0;
    events = m.executed;
    events_per_sec =
      (if m.wall_s > 0.0 then float_of_int m.executed /. m.wall_s else 0.0);
    drained = true;
    has_latency = false;
    phases = [];
  }

(* -- sharded storm --------------------------------------------------------

   The same self-propagating event core, driven through Lp/Sync instead
   of one engine: a fixed 4-LP partition (so every worker count runs the
   exact same workload) where each LP runs its own chains and every 64th
   event hops to the next LP through a mailbox.  Sweeping the worker
   count and asserting identical executed counts, final clocks and
   cross-posts pins down the barrier protocol's determinism contract;
   the events/sec column reports how the window overhead scales. *)

module Fabric = Draconis_net.Fabric

let shard_lp_count = 4
let shard_lookahead = 10_000

type shard_measurement = {
  workers : int;
  sh_executed : int;
  clocks : Time.t array; (* final clock per LP *)
  posted : int;
  windows : int;
  sh_wall_s : float;
}

let shard_storm ~workers ~total ~seed =
  let lps = Array.init shard_lp_count (fun i -> Lp.create ~id:i ~seed ()) in
  let boxes = Array.map (Fabric.Mailbox.create ~lookahead:shard_lookahead) lps in
  let scheduled = Array.make shard_lp_count 0 in
  let seqs = Array.make shard_lp_count 0 in
  let per_lp = total / shard_lp_count in
  (* [fire i] only ever runs on LP [i]'s domain: locally scheduled
     successors stay on LP [i], and a cross-post hands the closure for
     the *next* LP to that LP's mailbox. *)
  let rec fire i () =
    if scheduled.(i) < per_lp then begin
      let lp = lps.(i) in
      let engine = Lp.engine lp in
      let delay = 1 + Rng.int (Lp.rng lp) 50_000 in
      scheduled.(i) <- scheduled.(i) + 1;
      if scheduled.(i) land 63 = 0 then begin
        let j = (i + 1) mod shard_lp_count in
        seqs.(i) <- seqs.(i) + 1;
        Fabric.Mailbox.post boxes.(j) ~now:(Engine.now engine)
          ~latency:(shard_lookahead + delay) ~src:i ~seq:seqs.(i) (fire j)
      end
      else ignore (Engine.schedule engine ~after:delay (fire i))
    end
  in
  Array.iteri
    (fun i lp ->
      for _ = 1 to 8 do
        scheduled.(i) <- scheduled.(i) + 1;
        ignore
          (Engine.schedule (Lp.engine lp)
             ~after:(1 + Rng.int (Lp.rng lp) 50_000)
             (fire i))
      done)
    lps;
  let sync = Sync.create ~lookahead:shard_lookahead lps in
  let t0 = Unix.gettimeofday () in
  Shard.run_windows ~workers sync;
  let sh_wall_s = Unix.gettimeofday () -. t0 in
  {
    workers;
    sh_executed = Sync.executed sync;
    clocks = Array.map (fun lp -> Engine.now (Lp.engine lp)) lps;
    posted = Array.fold_left (fun acc lp -> acc + Lp.posted lp) 0 lps;
    windows = Sync.windows sync;
    sh_wall_s;
  }

let shard_outcome (m : shard_measurement) : Runner.outcome =
  {
    system = Printf.sprintf "engine-sharded-s%d" m.workers;
    load_tps = 0.0;
    sched_p50 = 0;
    sched_p99 = 0;
    sched_mean = 0.0;
    decisions_per_sec = 0.0;
    submitted = m.sh_executed;
    started = m.sh_executed;
    completed = m.sh_executed;
    timeouts = 0;
    rejected = 0;
    recirc_fraction = 0.0;
    recirc_drops = 0;
    swaps = 0;
    recirculations = 0;
    repair_flags = 0;
    events = m.sh_executed;
    events_per_sec =
      (if m.sh_wall_s > 0.0 then float_of_int m.sh_executed /. m.sh_wall_s else 0.0);
    drained = true;
    has_latency = false;
    phases = [];
  }

let run_sharded ~quick ~seed =
  let total = if quick then 100_000 else 1_000_000 in
  let worker_counts = List.sort_uniq compare [ 1; 2; Shard.shards () ] in
  let runs = List.map (fun w -> shard_storm ~workers:w ~total ~seed) worker_counts in
  let reference = List.hd runs in
  List.iter
    (fun m ->
      if m.sh_executed <> reference.sh_executed then
        failwith
          (Printf.sprintf
             "engine-bench: sharded storm executed %d events with %d workers, %d \
              with %d"
             m.sh_executed m.workers reference.sh_executed reference.workers);
      if m.clocks <> reference.clocks then
        failwith
          (Printf.sprintf
             "engine-bench: sharded storm final clocks diverge at %d workers"
             m.workers);
      if m.posted <> reference.posted then
        failwith
          (Printf.sprintf
             "engine-bench: sharded storm cross-posts diverge (%d at %d workers, %d \
              at %d)"
             m.posted m.workers reference.posted reference.workers);
      if m.windows <> reference.windows then
        failwith
          (Printf.sprintf
             "engine-bench: sharded storm window counts diverge at %d workers"
             m.workers))
    runs;
  let table =
    Table.create
      ~columns:[ "workers"; "events"; "windows"; "cross-posts"; "wall s"; "events/sec" ]
  in
  List.iter
    (fun m ->
      Table.add_row table
        [
          string_of_int m.workers;
          string_of_int m.sh_executed;
          string_of_int m.windows;
          string_of_int m.posted;
          Printf.sprintf "%.3f" m.sh_wall_s;
          Printf.sprintf "%.0f"
            (if m.sh_wall_s > 0.0 then float_of_int m.sh_executed /. m.sh_wall_s
             else 0.0);
        ])
    runs;
  Table.print
    ~title:
      (Printf.sprintf "engine-bench: sharded storm (%d LPs, worker-count sweep)"
         shard_lp_count)
    table;
  Report.add_outcomes (List.map shard_outcome runs)

let run ?(quick = false) () =
  let total = if quick then 200_000 else 2_000_000 in
  let seed = 42 in
  (* Warm up both paths once so the first measured run does not pay
     one-time costs (code, branch predictors) the other would skip. *)
  List.iter
    (fun calendar -> ignore (storm ~calendar ~total:(total / 20) ~seed))
    [ Engine.Heap; Engine.Wheel ];
  let heap = storm ~calendar:Engine.Heap ~total ~seed in
  let wheel = storm ~calendar:Engine.Wheel ~total ~seed in
  if heap.executed <> wheel.executed then
    failwith
      (Printf.sprintf
         "engine-bench: calendars disagree on executed events (heap %d, wheel %d)"
         heap.executed wheel.executed);
  if heap.final_clock <> wheel.final_clock then
    failwith
      (Printf.sprintf
         "engine-bench: calendars disagree on final clock (heap %d, wheel %d)"
         heap.final_clock wheel.final_clock);
  if heap.cancels <> wheel.cancels then
    failwith
      (Printf.sprintf
         "engine-bench: calendars disagree on cancels (heap %d, wheel %d)"
         heap.cancels wheel.cancels);
  let table =
    Table.create
      ~columns:
        [ "calendar"; "events"; "wall s"; "events/sec"; "minor words/event" ]
  in
  let rate m =
    if m.wall_s > 0.0 then float_of_int m.executed /. m.wall_s else 0.0
  in
  List.iter
    (fun m ->
      Table.add_row table
        [
          Engine.calendar_name m.calendar;
          string_of_int m.executed;
          Printf.sprintf "%.3f" m.wall_s;
          Printf.sprintf "%.0f" (rate m);
          Table.f2 m.words_per_event;
        ])
    [ heap; wheel ];
  Table.print ~title:"engine-bench: event core (heap vs wheel calendar)" table;
  let speedup = if rate heap > 0.0 then rate wheel /. rate heap else 0.0 in
  Printf.printf
    "wheel/heap speedup: %.2fx; minor words/event: heap %.2f, wheel %.2f\n%!"
    speedup heap.words_per_event wheel.words_per_event;
  Report.add_outcomes [ outcome heap; outcome wheel ];
  run_sharded ~quick ~seed
