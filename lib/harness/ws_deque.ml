(* Chase-Lev work-stealing deque (Chase & Lev, SPAA '05; memory-model
   treatment after Le et al., PPoPP '13).

   One owner pushes and pops at the bottom (LIFO); any number of thieves
   steal from the top (FIFO) with a CAS.  The buffer is a growable
   circular array indexed by the *logical* position (masked), so growth
   preserves every outstanding index: thieves racing a resize still find
   their element at [top land mask] in whichever buffer they loaded —
   the owner only copies into a fresh array and never overwrites live
   slots of the old one.

   OCaml 5 memory-model notes: [top], [bottom] and the buffer pointer
   are [Atomic.t], so a thief that observes a pushed [bottom] also
   observes the slot write that preceded it (publication), and the
   owner's [pop] narrowing [bottom] is totally ordered with thieves'
   [top] CASes.  Slot reads of already-published elements race only
   with slot writes for *other* logical indices. *)

type 'a buffer = { mask : int; slots : 'a option array }

type 'a t = {
  top : int Atomic.t;  (* next index thieves take *)
  bottom : int Atomic.t;  (* next index the owner pushes at *)
  buf : 'a buffer Atomic.t;  (* replaced (never mutated in place) on growth *)
}

let buffer size = { mask = size - 1; slots = Array.make size None }

let create ?(size_exponent = 5) () =
  if size_exponent < 1 || size_exponent > 22 then
    invalid_arg "Ws_deque.create: size_exponent out of [1, 22]";
  { top = Atomic.make 0; bottom = Atomic.make 0; buf = Atomic.make (buffer (1 lsl size_exponent)) }

(* Owner only.  Doubles the buffer, copying the live logical range so
   every index in [t, b) resolves to the same element before and after
   the swap. *)
let grow q top bottom =
  let old = Atomic.get q.buf in
  let fresh = buffer (2 * (old.mask + 1)) in
  for i = top to bottom - 1 do
    fresh.slots.(i land fresh.mask) <- old.slots.(i land old.mask)
  done;
  Atomic.set q.buf fresh

let push q v =
  let b = Atomic.get q.bottom in
  let t = Atomic.get q.top in
  let buf = Atomic.get q.buf in
  if b - t > buf.mask then grow q t b;
  let buf = Atomic.get q.buf in
  buf.slots.(b land buf.mask) <- Some v;
  Atomic.set q.bottom (b + 1)

let pop q =
  let b = Atomic.get q.bottom - 1 in
  Atomic.set q.bottom b;
  let t = Atomic.get q.top in
  if b < t then begin
    (* Already empty; restore the canonical empty shape. *)
    Atomic.set q.bottom t;
    None
  end
  else begin
    let buf = Atomic.get q.buf in
    let v = buf.slots.(b land buf.mask) in
    if b > t then v
    else begin
      (* Last element: contend with thieves on [top]. *)
      let won = Atomic.compare_and_set q.top t (t + 1) in
      Atomic.set q.bottom (t + 1);
      if won then v else None
    end
  end

let steal q =
  let t = Atomic.get q.top in
  let b = Atomic.get q.bottom in
  if t >= b then None
  else begin
    let buf = Atomic.get q.buf in
    let v = buf.slots.(t land buf.mask) in
    if Atomic.compare_and_set q.top t (t + 1) then v else None
  end

(* Racy size estimate: exact for the owner, a hint for thieves (used to
   decide whether a victim is worth another scan). *)
let size q = max 0 (Atomic.get q.bottom - Atomic.get q.top)

let capacity q = (Atomic.get q.buf).mask + 1
