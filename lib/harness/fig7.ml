open Draconis_sim
open Draconis_stats
open Draconis_workload

let kind = Synthetic.Fixed_250us

let run ?(quick = false) () =
  let spec = Systems.default_spec in
  let executors = spec.workers * spec.executors_per_worker in
  let utilizations = if quick then [ 0.82 ] else [ 0.5; 0.7; 0.82; 0.89; 0.93; 0.97 ] in
  let loads = Exp_common.loads kind ~executors ~utilizations in
  (* 4x the task time (within the paper's typical 5-10x) — a 2x timeout
     resubmits JBSQ-3 tasks that are merely stacked and spirals. *)
  let timeout = Time.ms 1 in
  let table =
    Table.create
      ~columns:
        [ "system"; "util"; "recirculated (% of pkts)"; "dropped tasks (%)";
          "p99 (us)" ]
  in
  let systems =
    [
      (fun () -> Systems.r2p2 ~k:1 ~client_timeout:timeout spec);
      (fun () -> Systems.r2p2 ~k:3 ~client_timeout:timeout spec);
      (fun () -> Systems.draconis spec);
    ]
  in
  let grid =
    List.concat_map
      (fun make ->
        List.map2 (fun load util -> (make, load, util)) loads utilizations)
      systems
  in
  let rows =
    Pool.map
      (List.map
         (fun (make, load, _) () ->
           let system = make () in
           let horizon =
             Exp_common.horizon_for ~rate_tps:load
               ~target_tasks:(if quick then 5_000 else 30_000)
               ()
           in
           let driver = Exp_common.synthetic_driver kind ~rate_tps:load ~horizon in
           Runner.run system ~driver ~load_tps:load ~horizon ())
         grid)
  in
  Report.add_outcomes rows;
  List.iter2
    (fun (_, _, util) (o : Runner.outcome) ->
      (* A dropped task shows up as a client timeout (it was
         resubmitted); report unique timed-out tasks over offered. *)
      let drop_pct =
        if o.submitted = 0 then 0.0
        else float_of_int o.recirc_drops /. float_of_int o.submitted
      in
      Table.add_row table
        [
          o.system;
          Printf.sprintf "%.0f%%" (100.0 *. util);
          Exp_common.pct o.recirc_fraction;
          Exp_common.pct drop_pct;
          Exp_common.us o.sched_p99;
        ])
    grid rows;
  Table.print ~title:"Fig 7: recirculation and task drops, 250us tasks" table
