open Draconis_sim
open Draconis_stats
open Draconis
module CS = Draconis_baselines.Central_server

(* Tofino packet budget (paper §8.2: "the switch can handle up to 4.7
   billion packets per second"). *)
let switch_pps = 4.7e9

(* Packets the switch handles per scheduling decision in steady state:
   the task_request/assignment exchange (the completion piggybacks the
   next request) plus the submission and completion-forwarding shares. *)
let draconis_packets_per_decision = 4.0

(* Per-decision CPU time of the server baselines (per-packet cost x
   packets per decision, matching Central_server's accounting). *)
let server_seconds_per_decision variant =
  float_of_int (CS.per_packet_cost variant) *. 1e-9 *. 5.0

let decisions_per_sec = function
  | `Draconis -> switch_pps /. draconis_packets_per_decision
  | `Server variant -> 1.0 /. server_seconds_per_decision variant

(* A scheduler feeding [rate] decisions/s keeps [rate x duration] cores
   continuously busy. *)
let cores_supported system ~duration_ns =
  decisions_per_sec system *. (float_of_int duration_ns /. 1e9)

let fmt_cores c =
  if c >= 1e6 then Printf.sprintf "%.1fM" (c /. 1e6)
  else if c >= 1e3 then Printf.sprintf "%.0fk" (c /. 1e3)
  else Printf.sprintf "%.0f" c

(* Small closed-loop simulation measuring Draconis decisions/s per
   executor, to validate the model's per-decision cost at reachable
   scale (the paper's own methodology). *)
let measured_decision_rate ~workers ~horizon =
  let fat_recirc =
    {
      Draconis_p4.Pipeline.default_config with
      recirc_slot = Time.ns 10;
      recirc_queue_limit = 8192;
    }
  in
  let system =
    Systems.draconis ~pipeline_config:fat_recirc
      { Systems.default_spec with workers; executors_per_worker = 16 }
  in
  Exp_common.feed_noop system ~in_flight:2048 ~horizon;
  Engine.run ~until:horizon system.Systems.engine;
  Meter.rate_over (Metrics.decisions system.Systems.metrics) ~duration:horizon

let run ?(quick = false) () =
  let durations =
    [ (Time.us 10, "10us"); (Time.us 100, "100us"); (Time.us 500, "500us");
      (Time.ms 1, "1ms"); (Time.ms 5, "5ms") ]
  in
  let table =
    Table.create
      ~columns:
        [ "task duration"; "Draconis (switch)"; "DPDK server"; "socket server" ]
  in
  List.iter
    (fun (duration_ns, label) ->
      Table.add_row table
        [
          label;
          fmt_cores (cores_supported `Draconis ~duration_ns);
          fmt_cores (cores_supported (`Server CS.Dpdk) ~duration_ns);
          fmt_cores (cores_supported (`Server CS.Socket) ~duration_ns);
        ])
    durations;
  Table.print
    ~title:
      "Sec 8.2 projection: cores each scheduler can keep busy (100% utilization)"
    table;
  (* Validation at reachable scale: the executor-loop cycle (~3.5 us
     RTT) binds a small cluster, so the measured rate must match
     executors / cycle, and the per-decision switch load stays ~4
     packets, grounding the projection. *)
  let horizon = if quick then Time.ms 2 else Time.ms 6 in
  let workers = if quick then 2 else 10 in
  let measured =
    (* A one-point grid, but routed through the pool so the validation
       simulation exercises the same path as the figure sweeps. *)
    match Pool.map [ (fun () -> measured_decision_rate ~workers ~horizon) ] with
    | [ rate ] -> rate
    | _ -> assert false
  in
  let rtt_bound = float_of_int (workers * 16) /. 3.55e-6 in
  Printf.printf
    "validation: %d executors measured %.1fM decisions/s (executor-loop bound %.1fM/s)\n"
    (workers * 16) (measured /. 1e6) (rtt_bound /. 1e6);
  Printf.printf
    "=> at 500us tasks the switch budget, not the executor loop, binds: %s cores\n"
    (fmt_cores (cores_supported `Draconis ~duration_ns:(Time.us 500)))
