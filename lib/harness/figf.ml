open Draconis_sim
open Draconis_stats
open Draconis_workload
open Draconis_fault
module CS = Draconis_baselines.Central_server

let kind = Synthetic.Fixed_500us

(* Only systems with a client timeout can recover from faults; sparrow
   (no timeout path) is excluded.  The fault targets mirror each
   system's real capability surface: switch fail-over and fabric faults
   everywhere, executor crash/straggler only where core executors run. *)
let systems ~timeout spec =
  [
    (fun () ->
      let cluster, running = Systems.draconis_cluster ~client_timeout:timeout spec in
      (running, Target.of_cluster ~name:running.Systems.name cluster));
    (fun () ->
      let server, running =
        Systems.central_server_system ~client_timeout:timeout CS.Dpdk spec
      in
      (running, Target.of_central_server ~name:running.Systems.name server));
    (fun () ->
      let server, running =
        Systems.central_server_system ~client_timeout:timeout CS.Socket spec
      in
      (running, Target.of_central_server ~name:running.Systems.name server));
    (fun () ->
      let r2p2, running = Systems.r2p2_system ~k:3 ~client_timeout:timeout spec in
      (running, Target.of_r2p2 ~name:running.Systems.name r2p2));
    (fun () ->
      let racksched, running = Systems.racksched_system ~client_timeout:timeout spec in
      (running, Target.of_racksched ~name:running.Systems.name racksched));
  ]

(* Increasing fault intensity: nothing, a mid-run scheduler fail-over,
   fail-over plus a correlated loss burst, and all of it plus a
   two-worker partition while the standby is still catching up. *)
let plans ~horizon ~quick =
  let mid = horizon / 2 in
  let base =
    [
      ("none", Plan.empty);
      ("failover", Plan.create [ { Plan.at = mid; event = Plan.Switch_failover } ]);
    ]
  in
  if quick then base
  else
    base
    @ [
        ( "failover+burst",
          Plan.create
            [
              {
                Plan.at = horizon / 4;
                event = Plan.Loss_burst { duration = horizon / 8; loss = 0.5 };
              };
              { Plan.at = mid; event = Plan.Switch_failover };
            ] );
        ( "failover+burst+partition",
          Plan.create
            [
              {
                Plan.at = horizon / 4;
                event = Plan.Loss_burst { duration = horizon / 8; loss = 0.5 };
              };
              { Plan.at = mid; event = Plan.Switch_failover };
              {
                Plan.at = horizon * 5 / 8;
                event = Plan.Partition { hosts = [ 0; 1 ]; duration = horizon / 8 };
              };
            ] );
      ]

let run ?(quick = false) () =
  let spec = Systems.default_spec in
  let executors = spec.workers * spec.executors_per_worker in
  (* High enough utilization that queues hold real state when the
     scheduler dies, low enough that every system can still drain. *)
  let load = 0.8 *. Exp_common.capacity_tps kind ~executors in
  let horizon = if quick then Time.ms 10 else Time.ms 40 in
  let timeout = Time.ms 1 in
  let plans = plans ~horizon ~quick in
  let table =
    Table.create
      ~columns:
        [ "system"; "faults"; "p99 (us)"; "completed"; "lost"; "recovery (us)";
          "timeouts"; "resub"; "aband"; "avail"; "drained" ]
  in
  (* Same pooling discipline as fig5a: one self-contained closure per
     (system x plan) grid point, results merged in submission order, so
     the table is byte-identical for any --jobs. *)
  let grid =
    List.concat_map
      (fun make -> List.map (fun (pname, plan) -> (make, pname, plan)) plans)
      (systems ~timeout spec)
  in
  let rows =
    Pool.map
      (List.map
         (fun (make, _, plan) () ->
           let running, target = make () in
           let injector = Injector.arm plan target in
           let driver = Exp_common.synthetic_driver kind ~rate_tps:load ~horizon in
           let outcome = Runner.run running ~driver ~load_tps:load ~horizon () in
           let report =
             Recovery.measure ~metrics:running.Systems.metrics ~injector
               ~until:horizon ()
           in
           (outcome, report))
         grid)
  in
  Report.add_outcomes (List.map fst rows);
  List.iter2
    (fun (_, pname, _) ((o : Runner.outcome), (r : Recovery.report)) ->
      Table.add_row table
        [
          o.system;
          pname;
          Exp_common.us o.sched_p99;
          Printf.sprintf "%d/%d" o.completed o.submitted;
          string_of_int r.queued_lost;
          (match r.recovery with None -> "-" | Some t -> Exp_common.us t);
          string_of_int r.timeouts;
          string_of_int r.resubmitted;
          string_of_int r.abandoned;
          Printf.sprintf "%.0f%%" (100.0 *. r.availability);
          Exp_common.yn o.drained;
        ])
    grid rows;
  Table.print ~title:"Fig F: fault injection - failover, burst, partition recovery"
    table
