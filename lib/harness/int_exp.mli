(** The [int] bench experiment: a load sweep over the Draconis
    deployment with in-band telemetry enabled, correlating switch-side
    queue depth (collector p50/p99 per level) with client scheduling
    delay, plus an in-run assertion that disabling INT leaves the
    seeded run's engine event count and outcome bit-identical while
    producing zero stamps. *)

val run : ?quick:bool -> unit -> unit
