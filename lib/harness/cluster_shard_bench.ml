open Draconis_workload

(* The cluster-shard experiment: run the *real* Draconis deployment —
   switch pipeline, workers, clients, the full protocol — sharded over
   1, 2 and 4 logical processes (plus whatever --shards/DRACONIS_SHARDS
   asks for), assert the tentpole contract (outcomes bit-identical for
   every shard count), and report one row per count so BENCH_engine.json
   tracks events/sec scaling of the parallel data path.

   Unlike shard-sim, which scales an abstract cluster *model*, these
   rows measure the production code path: Sync barrier windows fanned
   over a Pool.Team of work-stealing deques. *)

let kind = Synthetic.Fixed_500us

(* Fields that must not move across shard counts — everything the
   outcome carries except wall-clock throughput. *)
let digest (o : Runner.outcome) =
  ( o.submitted, o.started, o.completed, o.timeouts, o.rejected, o.sched_p50,
    o.sched_p99, o.swaps, o.recirculations, o.events, o.drained )

let run ?(quick = false) () =
  let spec = Systems.default_spec in
  let executors = spec.workers * spec.executors_per_worker in
  let rate_tps = 0.7 *. Exp_common.capacity_tps kind ~executors in
  let horizon =
    Exp_common.horizon_for ~rate_tps
      ~target_tasks:(if quick then 5_000 else 25_000)
      ()
  in
  let driver = Exp_common.synthetic_driver kind ~rate_tps ~horizon in
  let shard_counts =
    List.sort_uniq compare
      (match Shard.requested () with Some n -> [ 1; 2; 4; n ] | None -> [ 1; 2; 4 ])
  in
  let results =
    List.map
      (fun shards ->
        let system = Systems.draconis ~shards spec in
        let t0 = Unix.gettimeofday () in
        let outcome = Runner.run system ~driver ~load_tps:rate_tps ~horizon () in
        let wall_s = Unix.gettimeofday () -. t0 in
        (shards, wall_s, outcome))
      shard_counts
  in
  let _, _, reference = List.hd results in
  List.iter
    (fun (shards, _, (o : Runner.outcome)) ->
      (* Bit-identical outcomes are the whole contract; a divergence is
         a bug in the stamped data path, never an acceptable variance. *)
      if digest o <> digest reference then
        failwith
          (Printf.sprintf
             "cluster-shard: outcome with %d shards diverges from the reference"
             shards))
    results;
  let table =
    Draconis_stats.Table.create
      ~columns:
        [ "shards"; "lanes"; "submitted"; "completed"; "p99 (us)"; "events";
          "wall s"; "events/sec" ]
  in
  List.iter
    (fun (shards, wall_s, (o : Runner.outcome)) ->
      Draconis_stats.Table.add_row table
        [
          string_of_int shards;
          string_of_int (max 1 (min shards (Pool.jobs ())));
          string_of_int o.submitted;
          string_of_int o.completed;
          Exp_common.us o.sched_p99;
          string_of_int o.events;
          Printf.sprintf "%.3f" wall_s;
          Printf.sprintf "%.0f"
            (if wall_s > 0.0 then float_of_int o.events /. wall_s else 0.0);
        ])
    results;
  Draconis_stats.Table.print
    ~title:"cluster-shard: real data path across shard counts (work-stealing windows)"
    table;
  Printf.printf
    "outcomes identical across %s shards (submitted=%d completed=%d events=%d)\n%!"
    (String.concat "/" (List.map string_of_int shard_counts))
    reference.submitted reference.completed reference.events;
  Report.add_outcomes
    (List.map
       (fun (shards, wall_s, (o : Runner.outcome)) ->
         {
           o with
           Runner.system = Printf.sprintf "cluster-shard-n%d" shards;
           events_per_sec =
             (if wall_s > 0.0 then float_of_int o.events /. wall_s else 0.0);
         })
       results)
