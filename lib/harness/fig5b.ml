open Draconis_sim
open Draconis_stats
open Draconis
module CS = Draconis_baselines.Central_server

(* Multi-task submission packets enqueue one task per recirculation
   (sec 4.3), so feeding tens of millions of tasks per second needs the
   loop-back path provisioned like a Tofino with several recirculation
   ports. *)
let fat_recirc =
  {
    Draconis_p4.Pipeline.default_config with
    recirc_slot = Draconis_sim.Time.ns 10;
    recirc_queue_limit = 8192;
  }

let throughput make ~workers ~executors_per_worker ~horizon =
  let system =
    make { Systems.default_spec with workers; executors_per_worker; clients = 2 }
  in
  let executors = workers * executors_per_worker in
  (* Enough in-flight tasks that the queue outlasts one feeder period
     even at ~300k decisions/s per executor, but capped so slow
     server-based schedulers are not buried by the initial flood. *)
  Exp_common.feed_noop system ~in_flight:(min (60 * executors) 2048) ~horizon;
  Engine.run ~until:horizon system.engine;
  Draconis_stats.Meter.rate_over (Metrics.decisions system.metrics) ~duration:horizon

let run ?(quick = false) () =
  let horizon = if quick then Time.ms 2 else Time.ms 10 in
  let worker_counts = if quick then [ 2; 10 ] else [ 1; 2; 4; 6; 8; 10; 13 ] in
  let systems =
    [
      ("Draconis", fun spec -> Systems.draconis ~pipeline_config:fat_recirc spec);
      ("Draconis-DPDK-Server", fun spec -> Systems.central_server CS.Dpdk spec);
      ("Draconis-Socket-Server", fun spec -> Systems.central_server CS.Socket spec);
      ("1 Sparrow", fun spec -> Systems.sparrow ~schedulers:1 spec);
      ("2 Sparrow", fun spec -> Systems.sparrow ~schedulers:2 spec);
    ]
  in
  let table =
    Table.create
      ~columns:("system" :: List.map (fun w -> Printf.sprintf "%d exec" (16 * w)) worker_counts)
  in
  (* Flat (system x workers) grid, pooled; each cell is a full
     closed-loop simulation.  Re-chunk the flat results into rows. *)
  let cells =
    Pool.map
      (List.concat_map
         (fun (_, make) ->
           List.map
             (fun workers () ->
               throughput make ~workers ~executors_per_worker:16 ~horizon)
             worker_counts)
         systems)
  in
  List.iter2
    (fun (name, _) rates ->
      let rates =
        List.map
          (fun rate ->
            if rate >= 1e6 then Printf.sprintf "%.1fM/s" (rate /. 1e6)
            else Printf.sprintf "%.0fk/s" (rate /. 1e3))
          rates
      in
      Table.add_row table (name :: rates))
    systems
    (Exp_common.chunk (List.length worker_counts) cells);
  Table.print ~title:"Fig 5b: scheduling throughput (no-op tasks) vs executors" table
