(** Domain-based work pool for embarrassingly parallel experiment grids.

    Every (system x load) grid point of the evaluation harness is an
    independent, seeded, deterministic simulation, so the sweep
    parallelizes trivially: each grid point becomes a self-contained
    closure (its own engine, its own RNG) and the pool fans the closures
    out over [Domain.spawn] workers fed from a mutex/condition queue.

    Results always come back in {e submission} order, so tables and CSVs
    built from pooled rows are bit-identical whether the pool runs with
    1 worker or N — a property the determinism tests pin down.

    The worker count defaults to [Domain.recommended_domain_count () - 1]
    (at least 1), can be preset process-wide with the [DRACONIS_JOBS]
    environment variable, and is overridden by [set_jobs] (the [--jobs]
    flag of [bench/main.exe] and [draconis-sim figures]).  With one job
    the pool degenerates to running each closure inline in the
    submitting domain — the sequential reference behaviour. *)

type 'a t

(** Hard cap on worker domains ([set_jobs], [DRACONIS_JOBS], team
    sizes).  The OCaml 5 runtime supports at most 128 live domains per
    process; beyond a few dozen workers there is only oversubscription,
    so out-of-range settings are rejected loudly instead of silently
    spawning until the runtime fails. *)
val max_jobs : int

(** Process-wide default worker count: [DRACONIS_JOBS] if set and within
    [\[1, max_jobs\]], else [Domain.recommended_domain_count () - 1],
    at least 1.
    @raise Invalid_argument on a non-integer or out-of-range setting —
    a bad knob is a configuration error, never a preference. *)
val default_jobs : unit -> int

(** Current worker count used when [create]/[map] get no [?jobs]. *)
val jobs : unit -> int

(** Override the process-wide worker count.
    @raise Invalid_argument if [n < 1] or [n > max_jobs]. *)
val set_jobs : int -> unit

(** [create ?jobs ()] is an empty pool.  Worker domains are spawned
    lazily, one per submitted job up to [jobs]. *)
val create : ?jobs:int -> unit -> 'a t

(** [submit t job] enqueues a job.  With [jobs = 1] the job runs
    immediately in the calling domain.  Exceptions raised by [job] are
    captured and re-raised by [results].
    @raise Invalid_argument if called after [results]. *)
val submit : 'a t -> (unit -> 'a) -> unit

(** [results t] closes the pool, waits for every submitted job, joins
    the worker domains and returns the results in submission order.  If
    any job raised, the exception of the {e earliest-submitted} failed
    job is re-raised (with its backtrace) after all jobs have finished. *)
val results : 'a t -> 'a list

(** [map ?jobs fns] runs every closure on a fresh pool and returns their
    results in order: a parallel [List.map (fun f -> f ())]. *)
val map : ?jobs:int -> (unit -> 'a) list -> 'a list

(** Persistent worker team for repeated parallel batches.

    Where the pool above spawns domains per experiment sweep, a [Team]
    keeps its domains alive across an arbitrary number of [run] calls —
    the execution vehicle for sharded simulation, where every barrier
    window of a run fans the per-LP thunks out and joins them again
    (thousands of windows per experiment; spawn/join per window would
    dominate).  The calling domain participates as one of the lanes, so
    a team of size [n] spawns [n - 1] helper domains. *)
module Team : sig
  type t

  (** [create ~size] spawns [size - 1] helper domains.
      @raise Invalid_argument if [size < 1] or [size > max_jobs]. *)
  val create : size:int -> t

  val size : t -> int

  (** [run t thunks] executes every thunk to completion and returns only
      when all have finished.  Each lane (helpers plus the calling
      domain) seeds a strided slice of the batch into its own
      {!Ws_deque.t}, pops it LIFO, and steals from randomly chosen
      victims once its own deque is empty — so an oversized thunk on one
      lane never idles the others.  If any thunk raised, the first
      captured exception is re-raised after the batch barrier.
      @raise Invalid_argument if the team was shut down. *)
  val run : t -> (unit -> unit) array -> unit

  (** Joins the helper domains.  Idempotent. *)
  val shutdown : t -> unit
end
