(** Machine-readable benchmark results.

    [bench/main.exe --json FILE] tracks the performance trajectory of
    the reproduction across PRs: each experiment contributes its wall
    time, the number of simulated events it executed, and the key
    percentiles of every grid point it ran.  Figures push their pooled
    rows through {!add_outcomes}; the bench driver brackets each
    experiment with {!finish_experiment} and serializes everything with
    {!write}.

    All functions must be called from the coordinating domain (they are
    not thread-safe); pooled workers never touch the report directly. *)

val reset : unit -> unit

(** Record the outcome rows of the experiment currently running. *)
val add_outcomes : Runner.outcome list -> unit

(** Close the current experiment, attaching the outcomes accumulated
    since the previous call. *)
val finish_experiment : name:string -> wall_s:float -> unit

(** JSON document for everything recorded since [reset].  The header
    carries the effective worker-domain ([jobs]) and LP-shard ([shards])
    counts the run executed with. *)
val to_json : jobs:int -> shards:int -> quick:bool -> string

(** [write ~path ~jobs ~shards ~quick] writes {!to_json} to [path]. *)
val write : path:string -> jobs:int -> shards:int -> quick:bool -> unit
