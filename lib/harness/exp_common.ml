open Draconis_sim
open Draconis_workload

let capacity_tps kind ~executors =
  float_of_int executors /. (Synthetic.mean_duration kind /. 1e9)

let loads kind ~executors ~utilizations =
  let capacity = capacity_tps kind ~executors in
  List.map (fun u -> u *. capacity) utilizations

let synthetic_driver kind ~rate_tps ~horizon : Runner.driver =
 fun engine rng ~submit ->
  Arrival.drive engine rng
    (Arrival.uniform_spec ~rate_tps ~duration:(Synthetic.duration kind) ~horizon)
    ~submit

let horizon_for ~rate_tps ?(target_tasks = 25_000) ?(min_horizon = Time.ms 50)
    ?(max_horizon = Time.ms 400) () =
  let ideal = float_of_int target_tasks /. rate_tps *. 1e9 in
  max min_horizon (min max_horizon (int_of_float ideal))

let us ns = Printf.sprintf "%.1f" (float_of_int ns /. 1e3)
let pct f = Printf.sprintf "%.2f%%" (100.0 *. f)
let yn b = if b then "yes" else "no"

let chunk n lst =
  if n <= 0 then invalid_arg "Exp_common.chunk: n must be positive";
  let rec go acc current count = function
    | [] -> List.rev (if current = [] then acc else List.rev current :: acc)
    | x :: rest ->
      if count = n then go (List.rev current :: acc) [ x ] 1 rest
      else go acc (x :: current) (count + 1) rest
  in
  go [] [] 0 lst

(* Per-phase latency columns for outcomes that carried attribution.
   Prints nothing when no run was attributed (observability off, or a
   baselines-only figure), so default figure output is unchanged. *)
let print_phase_breakdown ~title (outcomes : Runner.outcome list) =
  let attributed = List.filter (fun (o : Runner.outcome) -> o.phases <> []) outcomes in
  match attributed with
  | [] -> ()
  | first :: _ ->
    let phase_names = List.map (fun (name, _, _) -> name) first.phases in
    let table =
      Draconis_stats.Table.create
        ~columns:
          ("system" :: "load (tps)"
          :: List.map (fun name -> name ^ " p50/p99 (us)") phase_names)
    in
    List.iter
      (fun (o : Runner.outcome) ->
        Draconis_stats.Table.add_row table
          (o.system
          :: Printf.sprintf "%.0fk" (o.load_tps /. 1e3)
          :: List.map
               (fun name ->
                 match List.find_opt (fun (n, _, _) -> n = name) o.phases with
                 | Some (_, p50, p99) -> Printf.sprintf "%s/%s" (us p50) (us p99)
                 | None -> "-")
               phase_names))
      attributed;
    Draconis_stats.Table.print ~title table

let feed_noop (system : Systems.running) ~in_flight ~horizon =
  let open Draconis_proto in
  (* The feeder reacts to executor starts mid-run, so its submission
     schedule cannot be recorded up front — staged (sharded) systems
     must not reach it silently. *)
  if Option.is_some system.control.Systems.stage then
    invalid_arg
      "Exp_common.feed_noop: closed-loop feeder cannot drive a staged (sharded) \
       system; run this experiment unsharded";
  let submitted = ref 0 in
  let submit_tasks n =
    let rec go n =
      if n > 0 then begin
        let chunk = min n Codec.max_tasks_per_packet in
        system.submit
          (List.init chunk (fun tid ->
               Task.make ~uid:0 ~jid:0 ~tid ~fn_id:Task.Fn.noop ~fn_par:0 ()));
        submitted := !submitted + chunk;
        go (n - chunk)
      end
    in
    go n
  in
  submit_tasks in_flight;
  (* No-op tasks are dropped at executors without a client reply, so the
     feeder tracks executor starts rather than completions. *)
  Engine.every system.engine ~interval:(Time.us 10) ~until:horizon (fun () ->
      let deficit = Draconis.Metrics.started system.metrics + in_flight - !submitted in
      if deficit > 0 then submit_tasks deficit)
