open Draconis_sim
open Draconis_stats
open Draconis_workload
module CS = Draconis_baselines.Central_server

(* Spark native: 500 us tasks at increasing utilization; the delay is
   dominated by the scheduler's own millisecond-scale per-task cost. *)
let spark_table ~quick =
  let spec = Systems.default_spec in
  let kind = Synthetic.Fixed_500us in
  let executors = spec.workers * spec.executors_per_worker in
  let utilizations = if quick then [ 0.5 ] else [ 0.1; 0.25; 0.5; 0.7 ] in
  let loads = Exp_common.loads kind ~executors ~utilizations in
  let table =
    Table.create ~columns:[ "util"; "p50 delay"; "p99 delay"; "drained?" ]
  in
  List.iter2
    (fun load util ->
      let system = Systems.central_server CS.Spark_native spec in
      let horizon = if quick then Time.ms 50 else Time.ms 150 in
      let driver = Exp_common.synthetic_driver kind ~rate_tps:load ~horizon in
      (* Bounded drain: at overload the backlog grows without limit. *)
      let o =
        Runner.run system ~driver ~load_tps:load ~horizon ~drain:(2 * horizon) ()
      in
      let fmt ns =
        if ns >= Time.ms 1 then Printf.sprintf "%.1f ms" (Time.to_ms ns)
        else Printf.sprintf "%.1f us" (Time.to_us ns)
      in
      Table.add_row table
        [
          Printf.sprintf "%.0f%%" (100.0 *. util);
          fmt o.sched_p50;
          fmt o.sched_p99;
          Exp_common.yn o.drained;
        ])
    loads utilizations;
  Table.print
    ~title:
      "Other schedulers: Spark native scheduler, 500us tasks (paper: ~3s delay at 50%, infinite queueing above)"
    table

(* Firmament: 5 ms tasks, growing executor counts; beyond ~1200
   executors the decision rate cannot keep the cluster fed. *)
let firmament_table ~quick =
  let duration = Time.ms 5 in
  let counts = if quick then [ 960; 1_440 ] else [ 480; 960; 1_200; 1_440; 1_920 ] in
  let table =
    Table.create
      ~columns:
        [ "executors"; "required rate"; "delivered rate"; "keeps cluster fed?" ]
  in
  List.iter
    (fun executors ->
      let workers = executors / 16 in
      let spec =
        { Systems.default_spec with workers; executors_per_worker = 16; clients = 2 }
      in
      let system = Systems.central_server CS.Firmament spec in
      (* Offer ~95% of the cluster's capacity. *)
      let load = 0.95 *. float_of_int executors /. Time.to_s duration in
      let horizon = if quick then Time.ms 60 else Time.ms 200 in
      (* Measure the steady state over the submission window only: a
         scheduler that keeps up has no growing backlog. *)
      let rng = Rng.create ~seed:(Runner.workload_seed ()) in
      Arrival.drive system.Systems.engine rng
        (Arrival.uniform_spec ~rate_tps:load ~duration:(Dist.constant duration) ~horizon)
        ~submit:system.Systems.submit;
      Engine.run ~until:horizon system.Systems.engine;
      let metrics = system.Systems.metrics in
      let delivered =
        float_of_int (Draconis.Metrics.started metrics) /. Time.to_s horizon
      in
      let backlog =
        Draconis.Metrics.submitted metrics - Draconis.Metrics.started metrics
      in
      (* A fed cluster's backlog stays within a scheduling round trip. *)
      let fed = float_of_int backlog < 0.02 *. float_of_int (Draconis.Metrics.submitted metrics) in
      Table.add_row table
        [
          string_of_int executors;
          Printf.sprintf "%.0fk/s" (load /. 1e3);
          Printf.sprintf "%.0fk/s" (delivered /. 1e3);
          Exp_common.yn fed;
        ])
    counts;
  Table.print
    ~title:
      "Other schedulers: Firmament-style centralized scheduler, 5ms tasks (paper: cannot scale past ~1200 executors)"
    table

let run ?(quick = false) () =
  spark_table ~quick;
  firmament_table ~quick
