open Draconis_sim
open Draconis_stats
open Draconis_workload
module CS = Draconis_baselines.Central_server

let percentiles = [ 25.0; 50.0; 75.0; 90.0; 95.0; 99.0 ]

let run ?(quick = false) () =
  let spec = Systems.default_spec in
  (* ~47% average utilization with bursty job arrivals: the medians sit
     in the microsecond range while the bursts build the long tails the
     paper attributes to the trace. *)
  let rate = 150_000.0 in
  let horizon = if quick then Time.ms 60 else Time.ms 400 in
  let trace_spec =
    {
      Google_trace.default_spec with
      rate_tps = rate;
      horizon;
      mean_duration = Time.us 500;
      mean_job_size = 6.0;
      burst_fraction = 0.01;
      burst_scale = 60;
    }
  in
  let driver engine rng ~submit = Google_trace.drive engine rng trace_spec ~submit in
  let timeout = Time.ms 2 in
  let systems =
    if quick then
      [ (fun () -> Systems.draconis spec);
        (fun () -> Systems.r2p2 ~k:5 ~client_timeout:timeout spec) ]
    else
      [
        (fun () -> Systems.draconis spec);
        (fun () -> Systems.racksched spec);
        (fun () -> Systems.r2p2 ~k:3 ~client_timeout:timeout spec);
        (fun () -> Systems.r2p2 ~k:5 ~client_timeout:timeout spec);
        (fun () -> Systems.r2p2 ~k:7 ~client_timeout:timeout spec);
        (fun () -> Systems.r2p2 ~k:9 ~client_timeout:timeout spec);
        (fun () -> Systems.central_server CS.Dpdk spec);
      ]
  in
  let table =
    Table.create
      ~columns:
        ("system"
        :: List.map (fun p -> Printf.sprintf "p%.0f (us)" p) percentiles
        @ [ "drops" ])
  in
  (* Each closure returns the outcome plus the extra percentile cells,
     computed from the system's own sampler before the closure ends. *)
  let rows =
    Pool.map
      (List.map
         (fun make () ->
           let system = make () in
           let o = Runner.run system ~driver ~load_tps:rate ~horizon () in
           let delays = Draconis.Metrics.scheduling_delay system.Systems.metrics in
           let cells =
             if Sampler.count delays = 0 then List.map (fun _ -> "-") percentiles
             else
               List.map
                 (fun p -> Exp_common.us (Sampler.percentile delays p))
                 percentiles
           in
           (o, cells))
         systems)
  in
  Report.add_outcomes (List.map fst rows);
  List.iter
    (fun ((o : Runner.outcome), cells) ->
      Table.add_row table ((o.system :: cells) @ [ string_of_int o.recirc_drops ]))
    rows;
  Table.print
    ~title:"Fig 9: scheduling-delay percentiles, Google trace (500us mean, bursty)"
    table
