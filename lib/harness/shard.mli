(** Sharded (parallel-in-run) simulation: the [DRACONIS_SHARDS] knob,
    the team-backed window executor, and a cluster-shaped reference
    model used to pin the determinism contract down.

    Where {!Pool} parallelizes {e across} independent grid points, this
    module parallelizes {e inside} one simulation: the model is
    partitioned into logical processes ({!Draconis_sim.Lp}), each with
    its own engine, and a conservative barrier-window coordinator
    ({!Draconis_sim.Sync}) runs them in lockstep windows bounded by the
    fabric's minimum link latency ({!Draconis_net.Fabric.lookahead}).

    {2 Determinism contract}

    A sharded run must produce {e exactly} the outcomes of the
    sequential run.  The model upholds this by construction:
    - every entity (switch, client, executor) draws from its own RNG
      stream derived from [(seed, entity id)], so partitioning never
      shifts draws;
    - {e all} entity-to-entity messages — same-LP or cross-LP — travel
      through {!Draconis_net.Fabric.Mailbox} with an [(at, src, seq)]
      stamp, so same-time deliveries are ordered by stamp alone;
    - fault plans compile to static time windows, so loss/partition/
      straggler decisions depend only on simulated time and endpoint;
    - the barrier-window sequence derives from the global event floor,
      which no grouping of entities onto LPs can change.

    The property suite asserts outcome equality across 1, 2 and 4
    shards; [DRACONIS_SHARDS=1] is the bit-deterministic reference. *)

open Draconis_sim

(** ["DRACONIS_SHARDS"]. *)
val env_var : string

(** Upper bound on shard/worker counts (= {!Pool.max_jobs}). *)
val max_shards : int

(** The [DRACONIS_SHARDS] setting alone, ignoring any [set_shards]
    override ([None] when unset or empty).
    @raise Invalid_argument on a non-integer or out-of-range setting —
    a bad knob is a configuration error, never a preference. *)
val env_shards : unit -> int option

(** Process-wide shard count: the [set_shards] override if any, else
    [DRACONIS_SHARDS] if set and within [\[1, max_shards\]], else [1].
    @raise Invalid_argument on a non-integer or out-of-range setting. *)
val shards : unit -> int

(** Override the process-wide shard count.
    @raise Invalid_argument if [n < 1] or [n > max_shards]. *)
val set_shards : int -> unit

(** The shard count that was actually asked for — the [set_shards]
    override if any, else [DRACONIS_SHARDS] if set — or [None] when
    neither knob was touched.  Call sites that treat sharding as opt-in
    (the real-cluster figure harnesses) use this to stay on the legacy
    single-engine path by default, where {!shards}'s fallback of [1]
    cannot distinguish "unset" from "explicitly 1". *)
val requested : unit -> int option

(** [run_windows ?until ?workers sync] drives {!Draconis_sim.Sync.run}.
    [workers] defaults to {!shards}; with one worker (or one LP) the
    windows execute inline — the sequential reference path — otherwise a
    persistent {!Pool.Team} of [min workers lps] lanes fans the per-LP
    thunks out and is shut down when the run finishes (or raises).
    @raise Invalid_argument if [workers] is outside [\[1, max_shards\]]. *)
val run_windows : ?until:Time.t -> ?workers:int -> Sync.t -> unit

(** {2 Sharded cluster model}

    A deliberately small open system in the shape of the paper's fig. 5a
    / fig. 6 experiments: open-loop clients submit tasks to a central
    switch scheduler (FIFO queue, smallest-id idle executor dispatch);
    executors run each task for its service time and send the completion
    back, pulling the next dispatch.  Metrics mirror {!Runner.outcome}:
    scheduling delay is queue-entry to dispatch at the switch. *)

type config = {
  clients : int;
  executors : int;
  interarrival : Dist.t;  (** per-client, open loop *)
  service : Dist.t;
  horizon : Time.t;  (** submissions stop after this instant *)
  seed : int;
  fabric : Draconis_net.Fabric.config;
      (** only the latency model is used: [host_to_switch] (which is
          also the sync lookahead) and [jitter]; loss comes from
          [faults] so that it composes with the window protocol *)
  faults : Draconis_fault.Plan.t;
      (** [Loss_burst] (sender-drawn i.i.d. drops inside the window),
          [Partition] (hosts: clients first, then executors) and
          [Straggler] (node = executor index) are supported;
          [Switch_failover] and [Crash] raise [Invalid_argument] *)
}

(** 4 clients, 10 executors (~80% utilization, so the delay percentiles
    are non-trivial), exp(25us) interarrivals, exp(50us) service, 5 ms
    horizon, default fabric, no faults. *)
val default_config : config

type result = {
  outcome : Runner.outcome;
      (** a pure function of [(config, lps)] — [events_per_sec] is left
          0 so results compare structurally; the bench wrapper attaches
          the wall-clock rate *)
  windows : int;  (** barrier windows executed (partition-independent) *)
  cross_posts : int;  (** messages routed through LP mailboxes *)
  dropped : int;  (** messages eaten by fault windows *)
  wall_s : float;
  lps : int;
  workers : int;
}

(** [run_model ?lps ?workers config] builds the model on [lps] logical
    processes (default {!shards}; LP 0 holds the switch, hosts split
    into rack-aligned groups via {!Draconis_net.Topology.partition}),
    runs it to completion on [workers] domains (default [lps]) and
    returns the frozen metrics.  Outcomes are equal for every valid
    [lps]/[workers] combination on the same [config].
    @raise Invalid_argument on an empty model, [lps]/[workers] out of
    range, more than [clients + executors + 1] LPs, or an unsupported
    fault in [config.faults]. *)
val run_model : ?lps:int -> ?workers:int -> config -> result
