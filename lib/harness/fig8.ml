open Draconis_stats
open Draconis_workload

let panel kind ~quick =
  let spec = Systems.default_spec in
  let executors = spec.workers * spec.executors_per_worker in
  let utilizations =
    if quick then [ 0.4; 0.82 ] else [ 0.2; 0.35; 0.5; 0.65; 0.82; 0.93 ]
  in
  let loads = Exp_common.loads kind ~executors ~utilizations in
  (* The paper sets client timeouts to 2x the task time; with JBSQ-3
     stacking up to three deep, a 2x timeout resubmits tasks that are
     merely queued and spirals, so we use 4x — still within the 5-10x
     the paper calls typical. *)
  let timeout = 4 * int_of_float (Synthetic.mean_duration kind) in
  let table =
    Table.create
      ~columns:
        ("system"
        :: List.concat_map
             (fun u ->
               [ Printf.sprintf "p99@%.0f%% (us)" (100.0 *. u);
                 Printf.sprintf "drops@%.0f%%" (100.0 *. u) ])
             utilizations)
  in
  let systems =
    [
      (fun () -> Systems.draconis spec);
      (fun () -> Systems.r2p2 ~k:1 ~client_timeout:timeout spec);
      (fun () -> Systems.r2p2 ~k:3 ~client_timeout:timeout spec);
    ]
  in
  let outcomes =
    Pool.map
      (List.concat_map
         (fun make ->
           List.map
             (fun load () ->
               let system = make () in
               let horizon =
                 Exp_common.horizon_for ~rate_tps:load
                   ~target_tasks:(if quick then 5_000 else 25_000)
                   ()
               in
               let driver = Exp_common.synthetic_driver kind ~rate_tps:load ~horizon in
               Runner.run system ~driver ~load_tps:load ~horizon ())
             loads)
         systems)
  in
  Report.add_outcomes outcomes;
  List.iter
    (fun row ->
      match row with
      | [] -> ()
      | (first : Runner.outcome) :: _ ->
        let cells =
          List.concat_map
            (fun (o : Runner.outcome) ->
              [ Exp_common.us o.sched_p99;
                (if o.recirc_drops > 0 then Printf.sprintf "%d!" o.recirc_drops
                 else "0");
              ])
            row
        in
        Table.add_row table (first.system :: cells))
    (Exp_common.chunk (List.length loads) outcomes);
  Table.print
    ~title:
      (Printf.sprintf "Fig 8 (%s tasks): JBSQ bound vs p99; '!' marks dropped tasks"
         (Synthetic.name kind))
    table

let run ?(quick = false) () =
  panel Synthetic.Fixed_100us ~quick;
  if not quick then panel Synthetic.Fixed_250us ~quick
