(* Work pool over Domain.spawn.

   Jobs go through a mutex/condition-protected queue; each worker domain
   pulls the next job, runs it, and stores the result (or the exception)
   in a slot indexed by submission order.  [results]/[map] therefore
   return rows in submission order no matter which domain ran which job,
   which is what keeps parallel experiment sweeps bit-identical to the
   sequential run. *)

let env_var = "DRACONIS_JOBS"

let env_jobs () =
  match Sys.getenv_opt env_var with
  | None -> None
  | Some raw -> (
    match int_of_string_opt (String.trim raw) with
    | Some n when n >= 1 -> Some n
    | Some _ | None ->
      Printf.eprintf "warning: ignoring %s=%S (want a positive integer)\n%!"
        env_var raw;
      None)

let default_jobs () =
  match env_jobs () with
  | Some n -> n
  | None -> max 1 (Domain.recommended_domain_count () - 1)

let current_jobs = ref (-1)

let jobs () =
  if !current_jobs < 1 then current_jobs := default_jobs ();
  !current_jobs

let set_jobs n =
  if n < 1 then invalid_arg "Pool.set_jobs: jobs must be >= 1";
  current_jobs := n

type 'a cell = Pending | Done of 'a | Failed of exn * Printexc.raw_backtrace

type 'a t = {
  jobs : int;
  mutex : Mutex.t;
  todo : (int * (unit -> 'a)) Queue.t;
  work_or_close : Condition.t;
  job_done : Condition.t;
  mutable cells : 'a cell array;
  mutable submitted : int;
  mutable completed : int;
  mutable closed : bool;
  mutable domains : unit Domain.t list;
}

let create ?jobs:j () =
  let j = match j with Some j -> max 1 j | None -> jobs () in
  {
    jobs = j;
    mutex = Mutex.create ();
    todo = Queue.create ();
    work_or_close = Condition.create ();
    job_done = Condition.create ();
    cells = Array.make 16 Pending;
    submitted = 0;
    completed = 0;
    closed = false;
    domains = [];
  }

let run_job t index job =
  let cell =
    match job () with
    | v -> Done v
    | exception exn -> Failed (exn, Printexc.get_raw_backtrace ())
  in
  Mutex.lock t.mutex;
  t.cells.(index) <- cell;
  t.completed <- t.completed + 1;
  Condition.signal t.job_done;
  Mutex.unlock t.mutex

let worker t () =
  let rec loop () =
    Mutex.lock t.mutex;
    while Queue.is_empty t.todo && not t.closed do
      Condition.wait t.work_or_close t.mutex
    done;
    match Queue.take_opt t.todo with
    | None ->
      (* Closed and drained. *)
      Mutex.unlock t.mutex
    | Some (index, job) ->
      Mutex.unlock t.mutex;
      run_job t index job;
      loop ()
  in
  loop ()

(* Workers store results through [t.cells] under the mutex, so growing
   the array must also happen under the mutex or a concurrent store
   could land in the superseded array. *)
let grow_cells t index =
  if index >= Array.length t.cells then begin
    let bigger = Array.make (2 * Array.length t.cells) Pending in
    Array.blit t.cells 0 bigger 0 index;
    t.cells <- bigger
  end

let submit t job =
  if t.closed then invalid_arg "Pool.submit: pool already closed";
  let index = t.submitted in
  t.submitted <- index + 1;
  if t.jobs <= 1 then begin
    (* Sequential mode runs in the submitting domain, at submission
       time: no domains, no interleaving, the reference behaviour. *)
    grow_cells t index;
    run_job t index job
  end
  else begin
    Mutex.lock t.mutex;
    grow_cells t index;
    Queue.add (index, job) t.todo;
    Condition.signal t.work_or_close;
    Mutex.unlock t.mutex;
    if List.length t.domains < min t.jobs t.submitted then
      t.domains <- Domain.spawn (worker t) :: t.domains
  end

let results t =
  if not t.closed then begin
    Mutex.lock t.mutex;
    t.closed <- true;
    Condition.broadcast t.work_or_close;
    while t.completed < t.submitted do
      Condition.wait t.job_done t.mutex
    done;
    Mutex.unlock t.mutex;
    List.iter Domain.join t.domains;
    t.domains <- []
  end;
  for i = 0 to t.submitted - 1 do
    match t.cells.(i) with
    | Failed (exn, bt) -> Printexc.raise_with_backtrace exn bt
    | Done _ | Pending -> ()
  done;
  List.init t.submitted (fun i ->
      match t.cells.(i) with
      | Done v -> v
      | Failed _ | Pending -> assert false)

let map ?jobs fns =
  let t = create ?jobs () in
  List.iter (submit t) fns;
  results t
