(* Work pool over Domain.spawn.

   Jobs go through a mutex/condition-protected queue; each worker domain
   pulls the next job, runs it, and stores the result (or the exception)
   in a slot indexed by submission order.  [results]/[map] therefore
   return rows in submission order no matter which domain ran which job,
   which is what keeps parallel experiment sweeps bit-identical to the
   sequential run. *)

let env_var = "DRACONIS_JOBS"

(* The OCaml 5 runtime supports at most 128 live domains; past that,
   Domain.spawn fails outright.  Leave headroom for the coordinating
   domain and any LP-shard team, and reject the rest up front: a job
   count in the hundreds is always a typo or oversubscription, never a
   useful configuration. *)
let max_jobs = 64

(* An invalid value is a configuration error, not a preference: silently
   falling back to the default would run the sweep with the wrong
   parallelism and bury the typo (same contract as DRACONIS_CALENDAR). *)
let env_jobs () =
  match Sys.getenv_opt env_var with
  | None | Some "" -> None
  | Some raw -> (
    match int_of_string_opt (String.trim raw) with
    | Some n when n >= 1 && n <= max_jobs -> Some n
    | Some n ->
      invalid_arg
        (Printf.sprintf
           "Pool: %s=%d out of range [1, %d] (the OCaml 5 runtime supports at \
            most 128 domains per process)"
           env_var n max_jobs)
    | None ->
      invalid_arg
        (Printf.sprintf "Pool: %s=%S is not an integer" env_var raw))

let default_jobs () =
  match env_jobs () with
  | Some n -> n
  | None -> max 1 (Domain.recommended_domain_count () - 1)

let current_jobs = ref (-1)

let jobs () =
  if !current_jobs < 1 then current_jobs := default_jobs ();
  !current_jobs

let set_jobs n =
  if n < 1 then invalid_arg "Pool.set_jobs: jobs must be >= 1";
  if n > max_jobs then
    invalid_arg
      (Printf.sprintf
         "Pool.set_jobs: %d exceeds the cap of %d worker domains (the runtime supports \
          at most 128 domains per process; more workers than that only oversubscribes)"
         n max_jobs);
  current_jobs := n

type 'a cell = Pending | Done of 'a | Failed of exn * Printexc.raw_backtrace

type 'a t = {
  jobs : int;
  mutex : Mutex.t;
  todo : (int * (unit -> 'a)) Queue.t;
  work_or_close : Condition.t;
  job_done : Condition.t;
  mutable cells : 'a cell array;
  mutable submitted : int;
  mutable completed : int;
  mutable closed : bool;
  mutable domains : unit Domain.t list;
}

let create ?jobs:j () =
  let j = match j with Some j -> max 1 (min max_jobs j) | None -> jobs () in
  {
    jobs = j;
    mutex = Mutex.create ();
    todo = Queue.create ();
    work_or_close = Condition.create ();
    job_done = Condition.create ();
    cells = Array.make 16 Pending;
    submitted = 0;
    completed = 0;
    closed = false;
    domains = [];
  }

let run_job t index job =
  let cell =
    match job () with
    | v -> Done v
    | exception exn -> Failed (exn, Printexc.get_raw_backtrace ())
  in
  Mutex.lock t.mutex;
  t.cells.(index) <- cell;
  t.completed <- t.completed + 1;
  Condition.signal t.job_done;
  Mutex.unlock t.mutex

let worker t () =
  let rec loop () =
    Mutex.lock t.mutex;
    while Queue.is_empty t.todo && not t.closed do
      Condition.wait t.work_or_close t.mutex
    done;
    match Queue.take_opt t.todo with
    | None ->
      (* Closed and drained. *)
      Mutex.unlock t.mutex
    | Some (index, job) ->
      Mutex.unlock t.mutex;
      run_job t index job;
      loop ()
  in
  loop ()

(* Workers store results through [t.cells] under the mutex, so growing
   the array must also happen under the mutex or a concurrent store
   could land in the superseded array. *)
let grow_cells t index =
  if index >= Array.length t.cells then begin
    let bigger = Array.make (2 * Array.length t.cells) Pending in
    Array.blit t.cells 0 bigger 0 index;
    t.cells <- bigger
  end

let submit t job =
  if t.closed then invalid_arg "Pool.submit: pool already closed";
  let index = t.submitted in
  t.submitted <- index + 1;
  if t.jobs <= 1 then begin
    (* Sequential mode runs in the submitting domain, at submission
       time: no domains, no interleaving, the reference behaviour. *)
    grow_cells t index;
    run_job t index job
  end
  else begin
    Mutex.lock t.mutex;
    grow_cells t index;
    Queue.add (index, job) t.todo;
    Condition.signal t.work_or_close;
    Mutex.unlock t.mutex;
    if List.length t.domains < min t.jobs t.submitted then
      t.domains <- Domain.spawn (worker t) :: t.domains
  end

let results t =
  if not t.closed then begin
    Mutex.lock t.mutex;
    t.closed <- true;
    Condition.broadcast t.work_or_close;
    while t.completed < t.submitted do
      Condition.wait t.job_done t.mutex
    done;
    Mutex.unlock t.mutex;
    List.iter Domain.join t.domains;
    t.domains <- []
  end;
  for i = 0 to t.submitted - 1 do
    match t.cells.(i) with
    | Failed (exn, bt) -> Printexc.raise_with_backtrace exn bt
    | Done _ | Pending -> ()
  done;
  List.init t.submitted (fun i ->
      match t.cells.(i) with
      | Done v -> v
      | Failed _ | Pending -> assert false)

let map ?jobs fns =
  let t = create ?jobs () in
  List.iter (submit t) fns;
  results t

(* -- persistent worker team ------------------------------------------------ *)

(* The experiment pool above spawns domains per sweep and joins them at
   [results] — fine for a dozen long jobs, hopeless for a sharded
   simulation that needs its logical processes run in parallel at every
   barrier window (thousands of windows per run).  A [Team] keeps its
   domains alive across batches: [run] publishes a batch under an epoch
   counter, every lane seeds its own Chase-Lev deque with a strided
   slice of the batch and pops it LIFO, foraging through randomized
   steals from the other lanes once its own deque runs dry.  The
   caller's own domain participates as lane 0, so a team of [size] uses
   [size - 1] spawned domains. *)
module Team = struct
  type lane = {
    deque : (unit -> unit) Ws_deque.t;
    mutable rng : int;  (* xorshift state; lane-local, victim choice only *)
  }

  type t = {
    size : int;
    lanes : lane array;
    mutex : Mutex.t;
    start : Condition.t;  (* a new batch was published, or shutdown *)
    finished : Condition.t;  (* the current batch fully completed *)
    remaining : int Atomic.t;  (* thunks of the current batch not yet run *)
    mutable epoch : int;
    mutable batch : (unit -> unit) array;
    mutable failure : (exn * Printexc.raw_backtrace) option;
    mutable stop : bool;
    mutable domains : unit Domain.t list;
  }

  (* Victim choice only ever affects which idle lane runs which thunk,
     never the outcome (window thunks are independent by the lookahead
     contract), so a throwaway xorshift per lane is plenty. *)
  let next_rand lane =
    let x = lane.rng in
    let x = x lxor (x lsl 13) in
    let x = x lxor (x lsr 7) in
    let x = x lxor (x lsl 17) in
    let x = x land max_int in
    lane.rng <- (if x = 0 then 0x9e3779b9 else x);
    lane.rng

  (* Thunks run outside the lock; the first exception is kept (by order
     of discovery) and re-raised by [run] after the barrier, so a failed
     window never leaves helpers mid-batch.  The last lane to finish a
     thunk broadcasts the barrier — under the mutex, so the caller
     cannot miss the wakeup between its counter check and its wait. *)
  let exec t thunk =
    (try thunk ()
     with exn ->
       let bt = Printexc.get_raw_backtrace () in
       Mutex.lock t.mutex;
       if t.failure = None then t.failure <- Some (exn, bt);
       Mutex.unlock t.mutex);
    if Atomic.fetch_and_add t.remaining (-1) = 1 then begin
      Mutex.lock t.mutex;
      Condition.broadcast t.finished;
      Mutex.unlock t.mutex
    end

  (* Each lane owns the strided slice [li, li + size, li + 2*size, ...]
     of the batch and seeds it into its {e own} deque — pushes stay
     owner-only even while late lanes from the previous window are still
     foraging.  Seeding back-to-front makes the owner's LIFO pops visit
     its slice in batch order. *)
  let seed t li batch =
    let lane = t.lanes.(li) in
    let n = Array.length batch in
    let last = li + (n - 1 - li) / t.size * t.size in
    let i = ref last in
    while !i >= li do
      Ws_deque.push lane.deque batch.(!i);
      i := !i - t.size
    done

  (* One randomized pass over the other lanes.  [`Busy] distinguishes a
     lost CAS (victim still looked nonempty — scan again) from a clean
     all-empty pass (stop foraging): a lane must never park while a
     sibling's deque still holds work, but also must not spin once the
     window is drained down to thunks already in flight. *)
  let scan_once t li =
    let n = t.size in
    let r = next_rand t.lanes.(li) in
    let rec go o busy =
      if o >= n then if busy then `Busy else `Empty
      else begin
        let v = (r + o) mod n in
        if v = li then go (o + 1) busy
        else
          match Ws_deque.steal t.lanes.(v).deque with
          | Some thunk -> `Got thunk
          | None -> go (o + 1) (busy || Ws_deque.size t.lanes.(v).deque > 0)
      end
    in
    go 0 false

  let work t li =
    let lane = t.lanes.(li) in
    let rec own () =
      match Ws_deque.pop lane.deque with
      | Some thunk ->
        exec t thunk;
        own ()
      | None -> forage ()
    and forage () =
      match scan_once t li with
      | `Got thunk ->
        exec t thunk;
        own ()
      | `Busy ->
        Domain.cpu_relax ();
        forage ()
      | `Empty -> ()
    in
    own ()

  let helper t li () =
    let rec wait_for_batch seen =
      Mutex.lock t.mutex;
      while t.epoch = seen && not t.stop do
        Condition.wait t.start t.mutex
      done;
      if t.stop then Mutex.unlock t.mutex
      else begin
        let epoch = t.epoch in
        let batch = t.batch in
        Mutex.unlock t.mutex;
        seed t li batch;
        work t li;
        wait_for_batch epoch
      end
    in
    wait_for_batch 0

  let create ~size =
    if size < 1 then invalid_arg "Pool.Team.create: size must be >= 1";
    if size > max_jobs then
      invalid_arg
        (Printf.sprintf "Pool.Team.create: size %d exceeds the cap of %d worker domains"
           size max_jobs);
    let t =
      {
        size;
        lanes =
          Array.init size (fun i ->
              { deque = Ws_deque.create (); rng = (i * 0x9e3779b9) lor 1 });
        mutex = Mutex.create ();
        start = Condition.create ();
        finished = Condition.create ();
        remaining = Atomic.make 0;
        epoch = 0;
        batch = [||];
        failure = None;
        stop = false;
        domains = [];
      }
    in
    t.domains <- List.init (size - 1) (fun i -> Domain.spawn (helper t (i + 1)));
    t

  let size t = t.size

  let run t thunks =
    if Array.length thunks > 0 then begin
      Mutex.lock t.mutex;
      if t.stop then begin
        Mutex.unlock t.mutex;
        invalid_arg "Pool.Team.run: team already shut down"
      end;
      t.batch <- thunks;
      t.failure <- None;
      Atomic.set t.remaining (Array.length thunks);
      t.epoch <- t.epoch + 1;
      Condition.broadcast t.start;
      Mutex.unlock t.mutex;
      seed t 0 thunks;
      work t 0;
      Mutex.lock t.mutex;
      while Atomic.get t.remaining > 0 do
        Condition.wait t.finished t.mutex
      done;
      let failure = t.failure in
      (* Leave nothing for a late-waking helper to find. *)
      t.batch <- [||];
      Mutex.unlock t.mutex;
      match failure with
      | None -> ()
      | Some (exn, bt) -> Printexc.raise_with_backtrace exn bt
    end

  let shutdown t =
    Mutex.lock t.mutex;
    if not t.stop then begin
      t.stop <- true;
      Condition.broadcast t.start;
      Mutex.unlock t.mutex;
      List.iter Domain.join t.domains;
      t.domains <- []
    end
    else Mutex.unlock t.mutex
end
