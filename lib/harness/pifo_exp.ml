open Draconis_sim
open Draconis_proto
open Draconis_stats
open Draconis
open Draconis_workload

(* A PIFO pop costs [rows + 1] recirculations where a circular queue
   costs one, so the experiment provisions the loop-back path the way a
   deployment would (fig12 does the same for the priority policy) and
   keeps the rank store shallow: 32 slots / 16 banks = 2 scan rows.
   Concurrent pops all chase the global minimum and only one claim wins,
   so sustainable pop throughput is roughly one task per scan round trip
   (~2.4 us here) — the sweep uses 500 us tasks to keep every swept load
   under that ceiling; pushing past it wedges the rank store full and
   the client bounce/retry loop takes over (visible in the rejected
   column if a future change breaks the balance). *)
let pifo_pipeline =
  {
    Draconis_p4.Pipeline.default_config with
    recirc_slot = Time.ns 10;
    recirc_queue_limit = 4096;
  }

let pifo_capacity = 32
let wfq_weights = [| 8; 4; 2; 1 |]
let aging_levels = 4

(* One paired comparison: a PIFO discipline vs the circular-queue
   arrangement a deployment would use instead, on a workload carrying
   the properties the discipline ranks by. *)
type discipline = {
  key : string;
  policy : Policy.t;
  baseline_name : string;
  baseline : Policy.t;
  baseline_pipeline : Draconis_p4.Pipeline.config;
  tprops_of : Rng.t -> Task.tprops;
  class_weight : int -> int;  (** fairness weight of a task class *)
}

let disciplines =
  [
    {
      key = "edf";
      policy = Policy.Edf { default_deadline = Time.us 250 };
      baseline_name = "FCFS";
      baseline = Policy.Fcfs;
      baseline_pipeline = Draconis_p4.Pipeline.default_config;
      (* Mixed-urgency deadlines on the scheduling delay: tight ones
         FCFS misses behind a burst, loose ones EDF can safely defer. *)
      tprops_of =
        (fun rng -> Task.Deadline (Time.us 20 + Rng.int rng (Time.us 480)));
      class_weight = (fun _ -> 1);
    };
    {
      key = "wfq";
      policy = Policy.Wfq { quantum = Time.us 10; weights = wfq_weights };
      baseline_name = "FCFS";
      baseline = Policy.Fcfs;
      baseline_pipeline = Draconis_p4.Pipeline.default_config;
      (* Equal arrival shares: the discipline, not the mix, must produce
         the weighted delay differentiation. *)
      tprops_of =
        (fun rng -> Task.Tenant (Rng.int rng (Array.length wfq_weights)));
      class_weight =
        (fun c ->
          if c >= 0 && c < Array.length wfq_weights then wfq_weights.(c)
          else wfq_weights.(Array.length wfq_weights - 1));
    };
    {
      key = "aging";
      policy = Policy.Aging_priority { levels = aging_levels; quantum = Time.us 200 };
      baseline_name = "Priority";
      baseline = Policy.Priority { levels = aging_levels };
      (* The strict-priority baseline recirculates lower-level
         retrievals, so it gets the provisioned loop-back too. *)
      baseline_pipeline = pifo_pipeline;
      tprops_of = (fun rng -> Task.Priority (1 + Rng.int rng aging_levels));
      class_weight = (fun _ -> 1);
    };
  ]

(* --policy / DRACONIS_POLICY restriction: run exactly one discipline
   (its workload shape keyed by the policy constructor), parameterized
   as requested.  Unknown or circular-backend policies fail loudly. *)
let policy_override : Policy.t option ref = ref None
let set_policy p = policy_override := Some p

let requested_policy () =
  match !policy_override with
  | Some p -> Some p
  | None -> (
    match Sys.getenv_opt "DRACONIS_POLICY" with
    | None -> None
    | Some s -> Some (Policy.of_string s))

let selected_disciplines () =
  match requested_policy () with
  | None -> disciplines
  | Some p ->
    let key =
      match p with
      | Policy.Edf _ -> "edf"
      | Policy.Wfq _ -> "wfq"
      | Policy.Aging_priority _ -> "aging"
      | other ->
        invalid_arg
          (Format.asprintf
             "pifo experiment: --policy/DRACONIS_POLICY must name a \
              PIFO-backed discipline (edf/wfq/aging), got %a"
             Policy.pp other)
    in
    let d = List.find (fun d -> d.key = key) disciplines in
    let d = { d with policy = p } in
    (* A re-parameterized WFQ changes the tenant universe too. *)
    (match p with
    | Policy.Wfq { weights; _ } ->
      let n = Array.length weights in
      [
        {
          d with
          tprops_of = (fun rng -> Task.Tenant (Rng.int rng n));
          class_weight =
            (fun c -> if c >= 0 && c < n then weights.(c) else weights.(n - 1));
        };
      ]
    | _ -> [ d ])

(* Acceptance gate: every discipline's register allocation must place
   onto the default switch profile.  Raises (fails the experiment) if
   the rank store stops fitting. *)
let check_layout d =
  let spec = { Systems.default_spec with workers = 1; executors_per_worker = 1 } in
  let cluster, _ =
    Systems.draconis_cluster
      ~policy_of:(fun _ -> d.policy)
      ~queue_capacity:pifo_capacity ~pipeline_config:pifo_pipeline spec
  in
  let registers = Switch_program.registers (Cluster.program cluster) in
  let constraints = Draconis_p4.Layout.of_profile Draconis_p4.Resources.tofino1 in
  match Draconis_p4.Layout.place constraints registers with
  | Ok placement ->
    Printf.printf "%-6s %3d register arrays place on tofino1 (%d stages used)\n"
      d.key (List.length registers)
      (Array.fold_left (fun acc n -> acc + min n 1) 0
         placement.Draconis_p4.Layout.arrays_used)
  | Error e ->
    failwith
      (Format.asprintf "pifo experiment: %s register layout does not fit tofino1: %a"
         d.key Draconis_p4.Layout.pp_error e)

(* Weighted Jain fairness over per-class mean delay: x_c = mean delay x
   weight (WFQ should equalize delay x weight across tenants; a
   class-blind baseline equalizes raw delay instead).  1.0 = perfectly
   fair under the discipline's own notion of fairness. *)
let fairness_index d metrics =
  let classes =
    List.filter (fun (_, s) -> Sampler.count s > 0) (Metrics.delay_by_class metrics)
  in
  if List.length classes < 2 then None
  else begin
    let xs =
      List.map
        (fun (c, s) -> Sampler.mean s *. float_of_int (d.class_weight c))
        classes
    in
    let sum = List.fold_left ( +. ) 0.0 xs in
    let sq = List.fold_left (fun acc x -> acc +. (x *. x)) 0.0 xs in
    if sq = 0.0 then None
    else Some (sum *. sum /. (float_of_int (List.length xs) *. sq))
  end

(* The lowest class = highest tenant id (lightest weight) or lowest
   priority — the one a starvation-prone discipline hurts first. *)
let worst_class_p99 metrics =
  let classes =
    List.filter (fun (_, s) -> Sampler.count s > 0) (Metrics.delay_by_class metrics)
  in
  match List.rev classes with
  | [] -> None
  | (_, s) :: _ -> Some (Sampler.percentile s 99.0)

type row = {
  outcome : Runner.outcome;
  key : string;
  miss_rate : float option;
  fairness : float option;
  worst_p99 : int option;
}

let run_one d ~policy ~name ~pipeline ~capacity ~load ~horizon =
  let spec = Systems.default_spec in
  let system =
    Systems.draconis ~policy_of:(fun _ -> policy) ~queue_capacity:capacity
      ~pipeline_config:pipeline spec
  in
  let system = { system with Systems.name } in
  let driver engine rng ~submit =
    Arrival.drive engine rng
      {
        (Arrival.uniform_spec ~rate_tps:load
           ~duration:(Synthetic.duration Synthetic.Fixed_100us) ~horizon)
        with
        tprops_of = d.tprops_of;
      }
      ~submit
  in
  let outcome = Runner.run system ~driver ~load_tps:load ~horizon () in
  let tracked = Metrics.deadline_tracked system.Systems.metrics in
  {
    outcome;
    key = d.key;
    miss_rate =
      (if tracked = 0 then None
       else
         Some
           (float_of_int (Metrics.deadline_misses system.Systems.metrics)
           /. float_of_int tracked));
    fairness = fairness_index d system.Systems.metrics;
    worst_p99 = worst_class_p99 system.Systems.metrics;
  }

let run ?(quick = false) () =
  let ds = selected_disciplines () in
  List.iter check_layout ds;
  let spec = Systems.default_spec in
  let executors = spec.workers * spec.executors_per_worker in
  let utilizations = if quick then [ 0.5 ] else [ 0.3; 0.6; 0.85 ] in
  let kind = Synthetic.Fixed_500us in
  let loads = Exp_common.loads kind ~executors ~utilizations in
  let target_tasks = if quick then 3_000 else 15_000 in
  let runs =
    List.concat_map
      (fun d ->
        List.concat_map
          (fun (policy, name, pipeline, capacity) ->
            List.map
              (fun load () ->
                let horizon = Exp_common.horizon_for ~rate_tps:load ~target_tasks () in
                run_one d ~policy ~name ~pipeline ~capacity ~load ~horizon)
              loads)
          [
            ( d.policy,
              Printf.sprintf "PIFO-%s" d.key,
              pifo_pipeline,
              pifo_capacity );
            ( d.baseline,
              Printf.sprintf "%s (%s workload)" d.baseline_name d.key,
              d.baseline_pipeline,
              164_000 );
          ])
      ds
  in
  let rows = Pool.map runs in
  Report.add_outcomes (List.map (fun r -> r.outcome) rows);
  (* Fig6-style sweep: p99 scheduling delay per utilization. *)
  let table =
    Table.create
      ~columns:
        ("system"
        :: List.map (fun u -> Printf.sprintf "p99@%.0f%% (us)" (100.0 *. u))
             utilizations)
  in
  List.iter
    (fun row ->
      match row with
      | [] -> ()
      | first :: _ ->
        Table.add_row table
          (first.outcome.Runner.system
          :: List.map (fun r -> Exp_common.us r.outcome.Runner.sched_p99) row))
    (Exp_common.chunk (List.length loads) rows);
  Table.print
    ~title:"PIFO: p99 scheduling delay vs utilization (500us tasks)" table;
  (* Discipline-specific quality metrics at the heaviest swept load. *)
  let summary =
    Table.create
      ~columns:
        [
          "system"; "deadline misses"; "fairness (Jain)"; "worst-class p99 (us)";
          "rejected"; "recirc frac";
        ]
  in
  List.iter
    (fun row ->
      match List.rev row with
      | [] -> ()
      | heaviest :: _ ->
        Table.add_row summary
          [
            heaviest.outcome.Runner.system;
            (match heaviest.miss_rate with
            | Some r -> Exp_common.pct r
            | None -> "-");
            (match heaviest.fairness with
            | Some j -> Printf.sprintf "%.3f" j
            | None -> "-");
            (match heaviest.worst_p99 with
            | Some p -> Exp_common.us p
            | None -> "-");
            string_of_int heaviest.outcome.Runner.rejected;
            Exp_common.pct heaviest.outcome.Runner.recirc_fraction;
          ])
    (Exp_common.chunk (List.length loads) rows);
  Table.print
    ~title:
      (Printf.sprintf
         "PIFO: discipline quality at %.0f%% utilization"
         (100.0 *. List.nth utilizations (List.length utilizations - 1)))
    summary;
  Exp_common.print_phase_breakdown
    ~title:"PIFO: per-phase delay decomposition (attributed runs)"
    (List.map (fun r -> r.outcome) rows)
