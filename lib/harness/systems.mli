(** Uniform handles over every scheduler under evaluation.

    Each constructor assembles one system — Draconis (any policy), R2P2
    (any JBSQ bound), RackSched, Sparrow (1-2 schedulers), or a
    centralized server — and returns a {!running} handle exposing
    exactly what the experiment runner needs: a submit entry point, the
    engine, the shared metrics, and switch-side counters. *)

open Draconis_sim
open Draconis_net
open Draconis_proto
open Draconis

type spec = {
  workers : int;
  executors_per_worker : int;
  clients : int;
  seed : int;
}

(** The paper's testbed: 10 workers x 16 executors, 2 clients. *)
val default_spec : spec

(** Switch-side counters sampled at the end of a run. *)
type extras = {
  recirc_fraction : float;  (** recirculated / processed traversals *)
  recirc_drops : int;  (** packets lost at the recirculation port *)
  pipeline_processed : int;
  queue_rejections : int;  (** tasks bounced by a full queue *)
}

(** How the runner drives a system's virtual time.  Single-engine
    systems wrap their engine with {!engine_control}; a sharded Draconis
    cluster supplies the barrier-window protocol instead —
    {!Draconis.Cluster.run} under a {!Pool.Team} work-stealing executor,
    cross-LP effect flushing, and pre-staged submission. *)
type control = {
  run_until : Time.t -> unit;  (** advance simulated time to the bound *)
  now : unit -> Time.t;  (** current simulated time (max across LPs) *)
  events : unit -> int;  (** events executed (summed across LPs) *)
  finish : unit -> unit;
      (** flush in-flight cross-LP effects (deferred metric notes)
          before the outcome is read; no-op on single-engine systems *)
  close : unit -> unit;  (** release worker domains; idempotent *)
  stage : (at:Time.t -> Task.t list -> unit) option;
      (** [Some] iff the workload must be {e pre-staged} before the run:
          the runner records the driver's submission schedule and
          replays it here (before any time advances), pinning each job
          to the owning client's LP at the recorded time.  Open-loop
          drivers stage transparently; closed-loop drivers (which react
          to completions) cannot and must fail loud. *)
}

(** Control for a classic single-engine system: [run_until] =
    {!Draconis_sim.Engine.run}, [finish]/[close] no-ops, no staging. *)
val engine_control : Engine.t -> control

type running = {
  name : string;
  engine : Engine.t;
  metrics : Metrics.t;
  submit : Task.t list -> unit;  (** round-robins jobs across clients *)
  outstanding : unit -> int;
  extras : unit -> extras;
  probes : unit -> (string * (unit -> int)) list;
      (** instantaneous-state sources for {!Draconis_obs.Probe} — each
          [(name, read)] pair is sampled on the probe interval when
          observability is enabled; empty for systems with nothing to
          sample *)
  phase_attribution : bool;
      (** whether the system emits the full causal milestone sequence
          ({!Draconis.Causal}) so the runner may install a
          {!Draconis_obs.Trace_ctx}; true only for Draconis — baselines
          share the client and executor but not the switch program, so
          their milestone streams would be incomplete; also false for a
          sharded cluster (ambient observability is domain-local) *)
  control : control;
}

(** [draconis ?policy_of ?racks ?queue_capacity ?rsrc_of_node
    ?client_timeout ?noop_retry spec] — the full Draconis deployment.

    [?shards] routes the cluster through [n] logical processes (see
    {!Draconis.Cluster.config}); the returned control then runs barrier
    windows on a work-stealing team sized [min n (Pool.jobs ())] and
    requires staged submission.  [?faults] supplies the static fault
    windows a sharded run can express.  Outcomes are bit-identical
    across shard counts. *)
val draconis :
  ?policy_of:(Topology.t -> Policy.t) ->
  ?racks:int ->
  ?queue_capacity:int ->
  ?rsrc_of_node:(int -> int) ->
  ?client_timeout:Time.t ->
  ?noop_retry:Time.t ->
  ?pipeline_config:Draconis_p4.Pipeline.config ->
  ?shards:int ->
  ?faults:Cluster.static_faults ->
  spec ->
  running

(** [draconis_cluster ...] — same, returning the raw cluster for
    experiments that need deeper access (Fig. 11 per-node throughput). *)
val draconis_cluster :
  ?policy_of:(Topology.t -> Policy.t) ->
  ?racks:int ->
  ?queue_capacity:int ->
  ?rsrc_of_node:(int -> int) ->
  ?client_timeout:Time.t ->
  ?noop_retry:Time.t ->
  ?pipeline_config:Draconis_p4.Pipeline.config ->
  ?shards:int ->
  ?faults:Cluster.static_faults ->
  spec ->
  Cluster.t * running

val r2p2 :
  k:int ->
  ?client_timeout:Time.t ->
  ?pipeline_config:Draconis_p4.Pipeline.config ->
  ?work_stealing:bool ->
  spec ->
  running

val racksched :
  ?client_timeout:Time.t ->
  ?samples:int ->
  ?intra:Draconis_baselines.Node_worker.intra_policy ->
  spec ->
  running
val sparrow : schedulers:int -> spec -> running

val central_server :
  ?client_timeout:Time.t ->
  Draconis_baselines.Central_server.variant ->
  spec ->
  running

(** {2 Raw-handle constructors} — same systems, also returning the
    underlying instance for experiments that need deeper access (the
    fault injector builds its {!Draconis_fault.Target.t} from these). *)

val r2p2_system :
  k:int ->
  ?client_timeout:Time.t ->
  ?pipeline_config:Draconis_p4.Pipeline.config ->
  ?work_stealing:bool ->
  spec ->
  Draconis_baselines.R2p2.t * running

val racksched_system :
  ?client_timeout:Time.t ->
  ?samples:int ->
  ?intra:Draconis_baselines.Node_worker.intra_policy ->
  spec ->
  Draconis_baselines.Racksched.t * running

val central_server_system :
  ?client_timeout:Time.t ->
  Draconis_baselines.Central_server.variant ->
  spec ->
  Draconis_baselines.Central_server.t * running
