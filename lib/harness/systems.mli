(** Uniform handles over every scheduler under evaluation.

    Each constructor assembles one system — Draconis (any policy), R2P2
    (any JBSQ bound), RackSched, Sparrow (1-2 schedulers), or a
    centralized server — and returns a {!running} handle exposing
    exactly what the experiment runner needs: a submit entry point, the
    engine, the shared metrics, and switch-side counters. *)

open Draconis_sim
open Draconis_net
open Draconis_proto
open Draconis

type spec = {
  workers : int;
  executors_per_worker : int;
  clients : int;
  seed : int;
}

(** The paper's testbed: 10 workers x 16 executors, 2 clients. *)
val default_spec : spec

(** Switch-side counters sampled at the end of a run. *)
type extras = {
  recirc_fraction : float;  (** recirculated / processed traversals *)
  recirc_drops : int;  (** packets lost at the recirculation port *)
  pipeline_processed : int;
  queue_rejections : int;  (** tasks bounced by a full queue *)
}

type running = {
  name : string;
  engine : Engine.t;
  metrics : Metrics.t;
  submit : Task.t list -> unit;  (** round-robins jobs across clients *)
  outstanding : unit -> int;
  extras : unit -> extras;
  probes : unit -> (string * (unit -> int)) list;
      (** instantaneous-state sources for {!Draconis_obs.Probe} — each
          [(name, read)] pair is sampled on the probe interval when
          observability is enabled; empty for systems with nothing to
          sample *)
  phase_attribution : bool;
      (** whether the system emits the full causal milestone sequence
          ({!Draconis.Causal}) so the runner may install a
          {!Draconis_obs.Trace_ctx}; true only for Draconis — baselines
          share the client and executor but not the switch program, so
          their milestone streams would be incomplete *)
}

(** [draconis ?policy_of ?racks ?queue_capacity ?rsrc_of_node
    ?client_timeout ?noop_retry spec] — the full Draconis deployment. *)
val draconis :
  ?policy_of:(Topology.t -> Policy.t) ->
  ?racks:int ->
  ?queue_capacity:int ->
  ?rsrc_of_node:(int -> int) ->
  ?client_timeout:Time.t ->
  ?noop_retry:Time.t ->
  ?pipeline_config:Draconis_p4.Pipeline.config ->
  spec ->
  running

(** [draconis_cluster ...] — same, returning the raw cluster for
    experiments that need deeper access (Fig. 11 per-node throughput). *)
val draconis_cluster :
  ?policy_of:(Topology.t -> Policy.t) ->
  ?racks:int ->
  ?queue_capacity:int ->
  ?rsrc_of_node:(int -> int) ->
  ?client_timeout:Time.t ->
  ?noop_retry:Time.t ->
  ?pipeline_config:Draconis_p4.Pipeline.config ->
  spec ->
  Cluster.t * running

val r2p2 :
  k:int ->
  ?client_timeout:Time.t ->
  ?pipeline_config:Draconis_p4.Pipeline.config ->
  ?work_stealing:bool ->
  spec ->
  running

val racksched :
  ?client_timeout:Time.t ->
  ?samples:int ->
  ?intra:Draconis_baselines.Node_worker.intra_policy ->
  spec ->
  running
val sparrow : schedulers:int -> spec -> running

val central_server :
  ?client_timeout:Time.t ->
  Draconis_baselines.Central_server.variant ->
  spec ->
  running

(** {2 Raw-handle constructors} — same systems, also returning the
    underlying instance for experiments that need deeper access (the
    fault injector builds its {!Draconis_fault.Target.t} from these). *)

val r2p2_system :
  k:int ->
  ?client_timeout:Time.t ->
  ?pipeline_config:Draconis_p4.Pipeline.config ->
  ?work_stealing:bool ->
  spec ->
  Draconis_baselines.R2p2.t * running

val racksched_system :
  ?client_timeout:Time.t ->
  ?samples:int ->
  ?intra:Draconis_baselines.Node_worker.intra_policy ->
  spec ->
  Draconis_baselines.Racksched.t * running

val central_server_system :
  ?client_timeout:Time.t ->
  Draconis_baselines.Central_server.variant ->
  spec ->
  Draconis_baselines.Central_server.t * running
