(** Fault-injection experiment (paper §3.3 as data).

    Sweeps fault intensity — none, a mid-run scheduler fail-over, the
    fail-over plus a correlated loss burst, plus a two-worker partition
    — against scheduling delay and throughput, for Draconis and the
    server/switch baselines that support client-timeout recovery.  Each
    grid point arms a deterministic {!Draconis_fault.Plan} and reports
    the {!Draconis_fault.Recovery} metrics: queued tasks lost at
    fail-over, time-to-first-assignment of the standby, resubmissions
    and abandonments, and decision-timeline availability. *)

val run : ?quick:bool -> unit -> unit
