(** The [pifo] experiment: PIFO-backed disciplines (EDF, WFQ, aging
    priority) against their circular-queue counterparts.

    For each discipline the sweep runs the PIFO system and its baseline
    on the same property-carrying workload (deadlines, tenants, or
    priorities) across a utilization grid, reporting p99 scheduling
    delay, deadline-miss rate, a weighted Jain fairness index over
    per-class delays, and the worst class's p99 (the starvation
    indicator).  Before sweeping, every discipline's register layout is
    placed onto the default switch profile ({!Draconis_p4.Resources.tofino1});
    a layout that no longer fits fails the experiment. *)

(** [set_policy p] restricts the experiment to [p]'s discipline (the
    bench [--policy] flag).  [p] must be PIFO-backed; a circular-backend
    policy raises [Invalid_argument] when the experiment runs.  Without
    an override, the [DRACONIS_POLICY] environment variable is consulted
    (parsed fail-loud by {!Draconis.Policy.of_string}); unset means all
    three disciplines run. *)
val set_policy : Draconis.Policy.t -> unit

val run : ?quick:bool -> unit -> unit
