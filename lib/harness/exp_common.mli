(** Shared helpers for the per-figure experiment modules. *)

open Draconis_sim
open Draconis_workload

(** Cluster task-capacity (tasks/second) for a synthetic workload on
    [executors] executors. *)
val capacity_tps : Synthetic.kind -> executors:int -> float

(** [loads kind ~executors ~utilizations] converts utilization points
    into offered loads. *)
val loads : Synthetic.kind -> executors:int -> utilizations:float list -> float list

(** A driver submitting Poisson single-task jobs of the given synthetic
    workload. *)
val synthetic_driver :
  Synthetic.kind -> rate_tps:float -> horizon:Time.t -> Runner.driver

(** Horizon sized so roughly [target_tasks] tasks are submitted, clamped
    to [\[min_horizon, max_horizon\]]. *)
val horizon_for :
  rate_tps:float ->
  ?target_tasks:int ->
  ?min_horizon:Time.t ->
  ?max_horizon:Time.t ->
  unit ->
  Time.t

(** Format nanoseconds as microseconds ("12.3"). *)
val us : int -> string

(** Format a fraction as a percentage ("12.34%"). *)
val pct : float -> string

(** "yes"/"no". *)
val yn : bool -> string

(** [chunk n lst] splits [lst] into consecutive chunks of [n] (the last
    may be shorter) — used to turn a flat pooled grid back into table
    rows.
    @raise Invalid_argument if [n <= 0]. *)
val chunk : int -> 'a list -> 'a list list

(** [print_phase_breakdown ~title outcomes] prints a per-phase
    (p50/p99) latency decomposition table for the outcomes that carried
    phase attribution ({!Runner.outcome.phases}); prints nothing when
    none did, so unobserved figure output is unchanged. *)
val print_phase_breakdown : title:string -> Runner.outcome list -> unit

(** Closed-loop no-op feeder (Fig 5b, scaling validation): keeps
    [in_flight] tasks in the system by resubmitting one task per
    executor start, so the scheduler never idles. *)
val feed_noop : Systems.running -> in_flight:int -> horizon:Time.t -> unit
