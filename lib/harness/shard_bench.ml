open Draconis_sim

(* The shard-sim experiment: run the sharded cluster model
   (Shard.run_model) on 1, 2 and 4 logical processes (plus whatever
   DRACONIS_SHARDS asks for), assert the determinism contract — every
   partitioning produces the exact same outcome, window count and
   message count — and report one row per LP count so BENCH_engine.json
   tracks both the metrics and the events/sec scaling. *)

let run ?(quick = false) () =
  let config =
    {
      Shard.default_config with
      horizon = (if quick then Time.ms 2 else Time.ms 20);
    }
  in
  let lp_counts = List.sort_uniq compare [ 1; 2; 4; Shard.shards () ] in
  let results =
    List.map (fun lps -> Shard.run_model ~lps ~workers:lps config) lp_counts
  in
  let reference = List.hd results in
  List.iter
    (fun (r : Shard.result) ->
      (* run_model leaves outcome a pure function of (config, lps), so
         structural equality is the whole contract. *)
      if r.outcome <> reference.outcome then
        failwith
          (Printf.sprintf
             "shard-sim: outcome with %d LPs diverges from the %d-LP reference"
             r.lps reference.lps);
      if r.windows <> reference.windows then
        failwith
          (Printf.sprintf "shard-sim: window count diverges with %d LPs" r.lps);
      if r.cross_posts <> reference.cross_posts then
        failwith
          (Printf.sprintf "shard-sim: message count diverges with %d LPs" r.lps))
    results;
  let table =
    Draconis_stats.Table.create
      ~columns:
        [ "lps"; "workers"; "windows"; "messages"; "events"; "p99 us"; "wall s";
          "events/sec" ]
  in
  List.iter
    (fun (r : Shard.result) ->
      Draconis_stats.Table.add_row table
        [
          string_of_int r.lps;
          string_of_int r.workers;
          string_of_int r.windows;
          string_of_int r.cross_posts;
          string_of_int r.outcome.events;
          Printf.sprintf "%.1f" (Time.to_us r.outcome.sched_p99);
          Printf.sprintf "%.3f" r.wall_s;
          Printf.sprintf "%.0f"
            (if r.wall_s > 0.0 then float_of_int r.outcome.events /. r.wall_s
             else 0.0);
        ])
    results;
  Draconis_stats.Table.print
    ~title:"shard-sim: parallel-in-run scaling (sharded cluster model)" table;
  Printf.printf
    "outcomes identical across %s LPs (submitted=%d completed=%d windows=%d)\n%!"
    (String.concat "/" (List.map string_of_int lp_counts))
    reference.outcome.submitted reference.outcome.completed reference.windows;
  Report.add_outcomes
    (List.map
       (fun (r : Shard.result) ->
         {
           r.outcome with
           Runner.system = Printf.sprintf "shard-sim-lp%d" r.lps;
           events_per_sec =
             (if r.wall_s > 0.0 then float_of_int r.outcome.events /. r.wall_s
              else 0.0);
         })
       results)
