open Draconis_sim
open Draconis_stats
open Draconis_workload
open Draconis

let kind = Synthetic.Fixed_500us

let measure system ~load ~quick =
  let horizon =
    Exp_common.horizon_for ~rate_tps:load
      ~target_tasks:(if quick then 4_000 else 15_000)
      ()
  in
  let driver = Exp_common.synthetic_driver kind ~rate_tps:load ~horizon in
  Runner.run system ~driver ~load_tps:load ~horizon ()

(* Pool a (row x load) grid of self-contained closures and hand the flat
   outcome list back as rows of [List.length loads] cells. *)
let pooled_rows makes ~loads ~quick =
  let outcomes =
    Pool.map
      (List.concat_map
         (fun make ->
           List.map (fun load () -> measure (make ()) ~load ~quick) loads)
         makes)
  in
  Report.add_outcomes outcomes;
  Exp_common.chunk (List.length loads) outcomes

(* Pull (Draconis) vs push at increasing placement accuracy. *)
let pull_vs_push ~quick =
  let spec = Systems.default_spec in
  let executors = spec.workers * spec.executors_per_worker in
  let utilizations = if quick then [ 0.7 ] else [ 0.5; 0.7; 0.9 ] in
  let loads = Exp_common.loads kind ~executors ~utilizations in
  let table =
    Table.create
      ~columns:
        ("system"
        :: List.map (fun u -> Printf.sprintf "p99@%.0f%% (us)" (100.0 *. u)) utilizations)
  in
  let contenders =
    [
      (fun () -> Systems.draconis spec);
      (fun () -> Systems.racksched ~samples:1 spec);
      (fun () -> Systems.racksched ~samples:2 spec);
      (fun () -> Systems.racksched ~samples:spec.workers spec);
    ]
  in
  List.iter
    (fun row ->
      match row with
      | [] -> ()
      | (first : Runner.outcome) :: _ ->
        Table.add_row table
          (first.system
          :: List.map (fun (o : Runner.outcome) -> Exp_common.us o.sched_p99) row))
    (pooled_rows contenders ~loads ~quick);
  Table.print
    ~title:"Ablation: pull-based central queue vs push-based placement (500us tasks)"
    table

(* Cost of delayed pointer correction: repair packets and recirculation
   across load. *)
let correction_cost ~quick =
  let spec = Systems.default_spec in
  let executors = spec.workers * spec.executors_per_worker in
  let utilizations = if quick then [ 0.7 ] else [ 0.3; 0.6; 0.9 ] in
  let loads = Exp_common.loads kind ~executors ~utilizations in
  let table =
    Table.create
      ~columns:
        [ "util"; "p99 (us)"; "repairs launched"; "repairs / task";
          "recirculated (% pkts)" ]
  in
  let rows =
    Pool.map
      (List.map
         (fun load () ->
           let cluster, system = Systems.draconis_cluster spec in
           let o = measure system ~load ~quick in
           (o, Switch_program.repairs_launched (Cluster.program cluster)))
         loads)
  in
  Report.add_outcomes (List.map fst rows);
  List.iter2
    (fun util ((o : Runner.outcome), repairs) ->
      Table.add_row table
        [
          Printf.sprintf "%.0f%%" (100.0 *. util);
          Exp_common.us o.sched_p99;
          string_of_int repairs;
          Printf.sprintf "%.5f" (float_of_int repairs /. float_of_int (max 1 o.submitted));
          Exp_common.pct o.recirc_fraction;
        ])
    utilizations rows;
  Table.print
    ~title:
      "Ablation: delayed-pointer-correction overhead (repair packets are the price of the one-access rule)"
    table

(* R2P2-1 drops vs recirculation-port bandwidth. *)
let recirc_bandwidth ~quick =
  let spec = Systems.default_spec in
  let executors = spec.workers * spec.executors_per_worker in
  let load = List.hd (Exp_common.loads kind ~executors ~utilizations:[ 0.93 ]) in
  let slots = if quick then [ 100 ] else [ 400; 200; 100; 50; 25 ] in
  let table =
    Table.create
      ~columns:[ "recirc rate (Mpps)"; "dropped packets"; "p99 (us)"; "timeouts" ]
  in
  let rows =
    Pool.map
      (List.map
         (fun slot () ->
           let system =
             Systems.r2p2 ~k:1 ~client_timeout:(Time.ms 1)
               ~pipeline_config:
                 {
                   Draconis_p4.Pipeline.default_config with
                   recirc_slot = Time.ns slot;
                 }
               spec
           in
           measure system ~load ~quick)
         slots)
  in
  Report.add_outcomes rows;
  List.iter2
    (fun slot (o : Runner.outcome) ->
      Table.add_row table
        [
          Printf.sprintf "%.0f" (1e3 /. float_of_int slot);
          string_of_int o.recirc_drops;
          Exp_common.us o.sched_p99;
          string_of_int o.timeouts;
        ])
    slots rows;
  Table.print
    ~title:"Ablation: R2P2-1 task drops vs recirculation bandwidth (93% load)"
    table

(* Intra-node policy on a heavy-tailed workload: RackSched's cFCFS
   suffers head-of-line blocking behind long tasks; processor sharing
   (the paper's Shinjuku configuration) preempts them. *)
let intra_node_policy ~quick =
  let spec = Systems.default_spec in
  let kind = Synthetic.Exponential_250us in
  let executors = spec.workers * spec.executors_per_worker in
  let load = List.hd (Exp_common.loads kind ~executors ~utilizations:[ 0.8 ]) in
  let table = Table.create ~columns:[ "intra-node policy"; "p50 (us)"; "p99 (us)" ] in
  let configs =
    [
      ("cFCFS (no preemption)", Draconis_baselines.Node_worker.Fcfs);
      ( "processor sharing (25us quantum)",
        Draconis_baselines.Node_worker.Processor_sharing
          { quantum = Time.us 25; overhead = Time.us 1 } );
    ]
  in
  let rows =
    Pool.map
      (List.map
         (fun (_, intra) () ->
           let system = Systems.racksched ~intra spec in
           let horizon =
             Exp_common.horizon_for ~rate_tps:load
               ~target_tasks:(if quick then 4_000 else 15_000)
               ()
           in
           let driver = Exp_common.synthetic_driver kind ~rate_tps:load ~horizon in
           Runner.run system ~driver ~load_tps:load ~horizon ())
         configs)
  in
  Report.add_outcomes rows;
  List.iter2
    (fun (label, _) (o : Runner.outcome) ->
      Table.add_row table
        [ label; Exp_common.us o.sched_p50; Exp_common.us o.sched_p99 ])
    configs rows;
  Table.print
    ~title:
      "Ablation: RackSched intra-node policy on a heavy-tailed workload (exp-250us, 80% load)"
    table

(* Work stealing on R2P2-3: the paper (sec 2.2.1) argues stealing could
   address node-level blocking but costs coordination; measure both. *)
let work_stealing ~quick =
  let spec = Systems.default_spec in
  let executors = spec.workers * spec.executors_per_worker in
  let utilizations = if quick then [ 0.5 ] else [ 0.35; 0.5; 0.7 ] in
  let loads = Exp_common.loads kind ~executors ~utilizations in
  let table =
    Table.create
      ~columns:
        ("system"
        :: List.map (fun u -> Printf.sprintf "p99@%.0f%% (us)" (100.0 *. u)) utilizations
        @ [ "steals (last col)" ])
  in
  let contenders =
    [
      (fun () -> (Systems.draconis spec, fun () -> 0));
      (fun () -> (Systems.r2p2 ~k:3 ~client_timeout:(Time.ms 2) spec, fun () -> 0));
      (fun () ->
        let sys =
          Draconis_baselines.R2p2.create
            {
              Draconis_baselines.R2p2.default_config with
              seed = spec.seed;
              workers = spec.workers;
              executors_per_worker = spec.executors_per_worker;
              clients = spec.clients;
              jbsq_k = 3;
              work_stealing = true;
              client_timeout = Some (Time.ms 2);
            }
        in
        let running =
          {
            Systems.name = "R2P2-3+WS";
            engine = Draconis_baselines.R2p2.engine sys;
            metrics = Draconis_baselines.R2p2.metrics sys;
            submit =
              (fun tasks ->
                ignore
                  (Draconis.Client.submit_job (Draconis_baselines.R2p2.client sys 0) tasks));
            outstanding = (fun () -> Draconis_baselines.R2p2.outstanding sys);
            extras =
              (fun () ->
                {
                  Systems.recirc_fraction =
                    Draconis_p4.Pipeline.recirculation_fraction
                      (Draconis_baselines.R2p2.pipeline sys);
                  recirc_drops =
                    Draconis_p4.Pipeline.recirc_dropped (Draconis_baselines.R2p2.pipeline sys);
                  pipeline_processed =
                    Draconis_p4.Pipeline.processed (Draconis_baselines.R2p2.pipeline sys);
                  queue_rejections = 0;
                });
            probes = (fun () -> []);
            phase_attribution = false;
            control = Systems.engine_control (Draconis_baselines.R2p2.engine sys);
          }
        in
        (running, fun () -> Draconis_baselines.R2p2.steals sys));
    ]
  in
  (* Each grid point reads its own steal counter right after its run,
     inside the closure; the row reports the last load's count, as the
     column header says. *)
  let rows =
    Pool.map
      (List.concat_map
         (fun make ->
           List.map
             (fun load () ->
               let system, steals = make () in
               let o = measure system ~load ~quick in
               (o, steals ()))
             loads)
         contenders)
  in
  Report.add_outcomes (List.map fst rows);
  List.iter
    (fun row ->
      match row with
      | [] -> ()
      | ((first : Runner.outcome), _) :: _ ->
        let cells =
          List.map (fun ((o : Runner.outcome), _) -> Exp_common.us o.sched_p99) row
        in
        let steal_count = snd (List.nth row (List.length row - 1)) in
        Table.add_row table ((first.system :: cells) @ [ string_of_int steal_count ]))
    (Exp_common.chunk (List.length loads) rows);
  Table.print
    ~title:
      "Ablation: work stealing on R2P2-3 (sec 2.2.1 — can stealing fix node-level blocking?)"
    table

(* RackSched sampling width. *)
let sampling_width ~quick =
  let spec = Systems.default_spec in
  let executors = spec.workers * spec.executors_per_worker in
  let load = List.hd (Exp_common.loads kind ~executors ~utilizations:[ 0.85 ]) in
  let widths = if quick then [ 2 ] else [ 1; 2; 4; 10 ] in
  let table = Table.create ~columns:[ "samples"; "p50 (us)"; "p99 (us)" ] in
  let rows =
    Pool.map
      (List.map
         (fun samples () -> measure (Systems.racksched ~samples spec) ~load ~quick)
         widths)
  in
  Report.add_outcomes rows;
  List.iter2
    (fun samples (o : Runner.outcome) ->
      Table.add_row table
        [ string_of_int samples; Exp_common.us o.sched_p50; Exp_common.us o.sched_p99 ])
    widths rows;
  Table.print ~title:"Ablation: RackSched power-of-k sampling width (85% load)" table

let run ?(quick = false) () =
  pull_vs_push ~quick;
  correction_cost ~quick;
  recirc_bandwidth ~quick;
  sampling_width ~quick;
  intra_node_policy ~quick;
  work_stealing ~quick
