open Draconis_sim
open Draconis_proto
open Draconis
module B = Draconis_baselines

type spec = {
  workers : int;
  executors_per_worker : int;
  clients : int;
  seed : int;
}

let default_spec = { workers = 10; executors_per_worker = 16; clients = 2; seed = 42 }

type extras = {
  recirc_fraction : float;
  recirc_drops : int;
  pipeline_processed : int;
  queue_rejections : int;
}

(* How the runner drives a system's virtual time.  Single-engine systems
   get [engine_control]; the sharded cluster supplies window-protocol
   implementations (Sync.run under a work-stealing team, cross-LP
   flushing, staged submission). *)
type control = {
  run_until : Time.t -> unit;
  now : unit -> Time.t;
  events : unit -> int;
  finish : unit -> unit;
      (* flush in-flight cross-LP effects (deferred metric notes) before
         the runner freezes the outcome; no-op on single-engine systems *)
  close : unit -> unit;  (* release worker domains; idempotent *)
  stage : (at:Time.t -> Task.t list -> unit) option;
      (* [Some] iff the workload must be pre-staged before the run: the
         runner records the driver's submission schedule against a
         throwaway engine and replays it here, pinning each submission
         to the owning client's LP at the recorded time *)
}

type running = {
  name : string;
  engine : Engine.t;
  metrics : Metrics.t;
  submit : Task.t list -> unit;
  outstanding : unit -> int;
  extras : unit -> extras;
  probes : unit -> (string * (unit -> int)) list;
  phase_attribution : bool;
  control : control;
}

let engine_control engine =
  {
    run_until = (fun until -> Engine.run ~until engine);
    now = (fun () -> Engine.now engine);
    events = (fun () -> Engine.executed engine);
    finish = (fun () -> ());
    close = (fun () -> ());
    stage = None;
  }

(* Probe sources over a pipeline shared by Draconis and the switch-based
   baselines. *)
let pipeline_probes pipeline =
  [ ("pipeline.recirculated", fun () -> Draconis_p4.Pipeline.recirculated pipeline);
    ("pipeline.recirc_dropped", fun () -> Draconis_p4.Pipeline.recirc_dropped pipeline);
  ]

let fabric_probes fabric =
  [ ("fabric.delivered", fun () -> Draconis_net.Fabric.delivered fabric);
    ("fabric.lost", fun () -> Draconis_net.Fabric.lost fabric);
  ]

let no_extras =
  { recirc_fraction = 0.0; recirc_drops = 0; pipeline_processed = 0; queue_rejections = 0 }

(* Jobs round-robin across a system's clients, like the paper's multiple
   load generators. *)
let round_robin_submit clients submit_one =
  let cursor = ref 0 in
  fun tasks ->
    let i = !cursor in
    cursor := (i + 1) mod Array.length clients;
    submit_one clients.(i) tasks

(* Window-protocol control for a sharded cluster: Sync.run fanned out
   over a persistent work-stealing team (sized to the machine, capped at
   the shard count — outcomes are worker-count independent, so the cap
   is purely a resource decision). *)
let sharded_control cluster sync =
  let shard_count = Array.length (Sync.lps sync) in
  let lanes = max 1 (min shard_count (Pool.jobs ())) in
  let team = if lanes > 1 then Some (Pool.Team.create ~size:lanes) else None in
  let executor = Option.map (fun team thunks -> Pool.Team.run team thunks) team in
  let now () =
    Array.fold_left
      (fun acc lp -> max acc (Engine.now (Lp.engine lp)))
      Time.zero (Sync.lps sync)
  in
  let run_until until = Cluster.run ?executor cluster ~until in
  let cursor = ref 0 in
  let clients = Cluster.clients cluster in
  {
    run_until;
    now;
    events = (fun () -> Cluster.events cluster);
    finish =
      (fun () ->
        (* Two extra lookahead windows flush deferred cross-LP metric
           closures (submit notes ride one hop; exec-start notes are
           already bounded by task flight time).  The flush horizon is a
           pure function of the model, so it cannot perturb cross-shard
           outcome equality. *)
        run_until (now () + (2 * Sync.lookahead sync)));
    close = (fun () -> Option.iter Pool.Team.shutdown team);
    stage =
      Some
        (fun ~at tasks ->
          let i = !cursor in
          cursor := (i + 1) mod Array.length clients;
          let client = clients.(i) in
          ignore
            (Engine.schedule_at (Client.engine client) ~at (fun () ->
                 ignore (Client.submit_job client tasks))));
  }

let draconis_cluster ?(policy_of = fun _ -> Policy.Fcfs) ?(racks = 1)
    ?(queue_capacity = 164_000) ?(rsrc_of_node = fun _ -> 0xFFFFFFFF) ?client_timeout
    ?(noop_retry = Time.us 4) ?(pipeline_config = Draconis_p4.Pipeline.default_config)
    ?shards ?(faults = Cluster.no_faults) spec =
  let cluster =
    Cluster.create
      {
        Cluster.default_config with
        seed = spec.seed;
        workers = spec.workers;
        executors_per_worker = spec.executors_per_worker;
        clients = spec.clients;
        racks;
        policy_of;
        queue_capacity;
        noop_retry;
        rsrc_of_node;
        client_timeout;
        pipeline_config;
        shards;
        static_faults = faults;
      }
  in
  Cluster.start cluster;
  let sharded = Cluster.sync cluster in
  let control =
    match sharded with
    | None -> engine_control (Cluster.engine cluster)
    | Some sync -> sharded_control cluster sync
  in
  let running =
    {
      name = "Draconis";
      engine = Cluster.engine cluster;
      metrics = Cluster.metrics cluster;
      submit =
        round_robin_submit (Cluster.clients cluster) (fun client tasks ->
            ignore (Client.submit_job client tasks));
      outstanding = (fun () -> Cluster.outstanding cluster);
      extras =
        (fun () ->
          let pipeline = Cluster.pipeline cluster in
          {
            recirc_fraction = Draconis_p4.Pipeline.recirculation_fraction pipeline;
            recirc_drops = Draconis_p4.Pipeline.recirc_dropped pipeline;
            pipeline_processed = Draconis_p4.Pipeline.processed pipeline;
            queue_rejections = Switch_program.rejected_tasks (Cluster.program cluster);
          });
      probes =
        (fun () ->
          if Option.is_some sharded then
            (* Ambient observability is engine-local; sampling it from
               the runner's domain during a sharded run would race the
               worker lanes.  Sharded runs report end-state metrics
               only. *)
            []
          else
            (* The program is re-fetched per sample so probes follow a
               switch fail-over to the standby's fresh queues. *)
            (("queue.occupancy",
              fun () -> Switch_program.total_occupancy (Cluster.program cluster))
             :: ("executors.busy", fun () -> Cluster.busy_executors cluster)
             :: pipeline_probes (Cluster.pipeline cluster))
            @ fabric_probes (Cluster.fabric cluster));
      phase_attribution = Option.is_none sharded;
      control;
    }
  in
  (cluster, running)

let draconis ?policy_of ?racks ?queue_capacity ?rsrc_of_node ?client_timeout
    ?noop_retry ?pipeline_config ?shards ?faults spec =
  snd
    (draconis_cluster ?policy_of ?racks ?queue_capacity ?rsrc_of_node ?client_timeout
       ?noop_retry ?pipeline_config ?shards ?faults spec)

let r2p2_system ~k ?client_timeout
    ?(pipeline_config = Draconis_p4.Pipeline.default_config)
    ?(work_stealing = false) spec =
  let system =
    B.R2p2.create
      {
        B.R2p2.default_config with
        seed = spec.seed;
        workers = spec.workers;
        executors_per_worker = spec.executors_per_worker;
        clients = spec.clients;
        jbsq_k = k;
        work_stealing;
        client_timeout;
        pipeline_config;
      }
  in
  ( system,
    {
    name = Printf.sprintf "R2P2-%d%s" k (if work_stealing then "+WS" else "");
    engine = B.R2p2.engine system;
    metrics = B.R2p2.metrics system;
    submit =
      round_robin_submit (B.R2p2.clients system) (fun client tasks ->
          ignore (Client.submit_job client tasks));
    outstanding = (fun () -> B.R2p2.outstanding system);
      extras =
        (fun () ->
          let pipeline = B.R2p2.pipeline system in
          {
            recirc_fraction = Draconis_p4.Pipeline.recirculation_fraction pipeline;
            recirc_drops = Draconis_p4.Pipeline.recirc_dropped pipeline;
            pipeline_processed = Draconis_p4.Pipeline.processed pipeline;
            queue_rejections = 0;
          });
      probes = (fun () -> pipeline_probes (B.R2p2.pipeline system));
      phase_attribution = false;
      control = engine_control (B.R2p2.engine system);
    } )

let r2p2 ~k ?client_timeout ?pipeline_config ?work_stealing spec =
  snd (r2p2_system ~k ?client_timeout ?pipeline_config ?work_stealing spec)

let racksched_system ?client_timeout ?(samples = 2) ?(intra = B.Node_worker.Fcfs) spec =
  let system =
    B.Racksched.create
      {
        B.Racksched.default_config with
        seed = spec.seed;
        workers = spec.workers;
        executors_per_worker = spec.executors_per_worker;
        clients = spec.clients;
        samples;
        intra;
        client_timeout;
      }
  in
  let name =
    match (samples, intra) with
    | 2, B.Node_worker.Fcfs -> "RackSched"
    | k, B.Node_worker.Fcfs -> Printf.sprintf "RackSched-Po%d" k
    | 2, B.Node_worker.Processor_sharing _ -> "RackSched-PS"
    | k, B.Node_worker.Processor_sharing _ -> Printf.sprintf "RackSched-Po%d-PS" k
  in
  ( system,
    {
      name;
      engine = B.Racksched.engine system;
      metrics = B.Racksched.metrics system;
      submit =
        round_robin_submit (B.Racksched.clients system) (fun client tasks ->
            ignore (Client.submit_job client tasks));
      outstanding = (fun () -> B.Racksched.outstanding system);
      extras =
        (fun () ->
          let pipeline = B.Racksched.pipeline system in
          {
            recirc_fraction = Draconis_p4.Pipeline.recirculation_fraction pipeline;
            recirc_drops = Draconis_p4.Pipeline.recirc_dropped pipeline;
            pipeline_processed = Draconis_p4.Pipeline.processed pipeline;
            queue_rejections = 0;
          });
      probes = (fun () -> pipeline_probes (B.Racksched.pipeline system));
      phase_attribution = false;
      control = engine_control (B.Racksched.engine system);
    } )

let racksched ?client_timeout ?samples ?intra spec =
  snd (racksched_system ?client_timeout ?samples ?intra spec)

let sparrow ~schedulers spec =
  let system =
    B.Sparrow.create
      {
        B.Sparrow.default_config with
        seed = spec.seed;
        workers = spec.workers;
        executors_per_worker = spec.executors_per_worker;
        clients = spec.clients;
        schedulers;
      }
  in
  let cursor = ref 0 in
  {
    name = (if schedulers = 1 then "1 Sparrow" else Printf.sprintf "%d Sparrow" schedulers);
    engine = B.Sparrow.engine system;
    metrics = B.Sparrow.metrics system;
    submit =
      (fun tasks ->
        let client = !cursor in
        cursor := (client + 1) mod spec.clients;
        B.Sparrow.submit_job system ~client tasks);
    outstanding = (fun () -> B.Sparrow.outstanding system);
    extras = (fun () -> no_extras);
    probes = (fun () -> []);
    phase_attribution = false;
    control = engine_control (B.Sparrow.engine system);
  }

let central_server_system ?client_timeout variant spec =
  let system =
    B.Central_server.create
      {
        B.Central_server.default_config with
        seed = spec.seed;
        workers = spec.workers;
        executors_per_worker = spec.executors_per_worker;
        clients = spec.clients;
        variant;
        client_timeout;
      }
  in
  B.Central_server.start system;
  ( system,
    {
      name =
        (match variant with
        | B.Central_server.Socket -> "Draconis-Socket-Server"
        | B.Central_server.Dpdk -> "Draconis-DPDK-Server"
        | B.Central_server.Firmament -> "Firmament"
        | B.Central_server.Spark_native -> "Spark-Native");
      engine = B.Central_server.engine system;
      metrics = B.Central_server.metrics system;
      submit =
        round_robin_submit (B.Central_server.clients system) (fun client tasks ->
            ignore (Client.submit_job client tasks));
      outstanding = (fun () -> B.Central_server.outstanding system);
      extras =
        (fun () ->
          {
            no_extras with
            queue_rejections = Metrics.rejected (B.Central_server.metrics system);
          });
      probes = (fun () -> []);
      phase_attribution = false;
      control = engine_control (B.Central_server.engine system);
    } )

let central_server ?client_timeout variant spec =
  snd (central_server_system ?client_timeout variant spec)
